"""Tests for repro.analysis — the domain-invariant linter.

Each rule gets a fixture module that must flag and one that must pass;
plus suppression-comment, baseline round-trip, manifest (cache-key) and
CLI behavior, and a full pass over the real ``src/repro`` tree that must
come back clean.
"""

import json
import subprocess
import sys
import textwrap
from pathlib import Path

import pytest

from repro.analysis import (
    Baseline,
    Finding,
    Severity,
    all_rules,
    run_analysis,
)
from repro.analysis.cli import main as cli_main
from repro.analysis.engine import Project, default_scan_root, load_modules
from repro.analysis.manifest import ArchManifest, StoreManifest, WireManifest
from repro.analysis.rules.cache_key import (
    current_manifest,
    current_store_manifest,
    current_wire_manifest,
)
from repro.analysis.suppress import suppressions_for

SRC_REPRO = Path(__file__).resolve().parents[1] / "src" / "repro"


def write_module(root: Path, rel: str, body: str) -> Path:
    path = root / rel
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(textwrap.dedent(body), encoding="utf-8")
    return path


def run_on(tmp_path: Path, **kwargs):
    return run_analysis(
        root=tmp_path,
        rules=all_rules(),
        manifest_path=kwargs.pop("manifest_path", tmp_path / "manifest.json"),
        store_manifest_path=kwargs.pop(
            "store_manifest_path", tmp_path / "store_manifest.json"
        ),
        wire_manifest_path=kwargs.pop(
            "wire_manifest_path", tmp_path / "wire_manifest.json"
        ),
        **kwargs,
    )


def rule_ids(report):
    return [f.rule_id for f in report.findings]


class TestUnitsRule:
    def test_flags_offset_literal_outside_temperature_module(self, tmp_path):
        write_module(
            tmp_path,
            "thermal/bad.py",
            """
            def to_kelvin(t_c):
                return t_c + 273.15
            """,
        )
        report = run_on(tmp_path)
        assert rule_ids(report) == ["units"]
        assert report.findings[0].severity is Severity.ERROR
        assert "273.15" in report.findings[0].message

    def test_flags_reference_temperature_literal(self, tmp_path):
        write_module(
            tmp_path,
            "power/bad.py",
            "SCALE = 1.0 / 298.15\n",
        )
        report = run_on(tmp_path)
        assert rule_ids(report) == ["units"]

    def test_flags_kelvin_offset_in_thermal_place(self, tmp_path):
        """The placement thermal proxy works in relative density units;
        a Celsius/Kelvin offset sneaking in there is exactly the bug
        class the rule exists for."""
        write_module(
            tmp_path,
            "cad/thermal_place.py",
            "AMBIENT_K = 25.0 + 273.15\n",
        )
        report = run_on(tmp_path)
        assert rule_ids(report) == ["units"]

    def test_passes_unit_free_thermal_place(self, tmp_path):
        write_module(
            tmp_path,
            "cad/thermal_place.py",
            """
            import numpy as np

            def raw_cost(spread):
                return float(np.sum(spread**2))
            """,
        )
        assert run_on(tmp_path).findings == []

    def test_passes_inside_temperature_module_and_clean_code(self, tmp_path):
        write_module(
            tmp_path,
            "technology/temperature.py",
            """
            ZERO_CELSIUS_K = 273.15
            T_REFERENCE_K = 298.15
            """,
        )
        write_module(
            tmp_path,
            "thermal/good.py",
            """
            from repro.technology.temperature import celsius_to_kelvin

            def to_kelvin(t_c):
                return celsius_to_kelvin(t_c)
            """,
        )
        assert run_on(tmp_path).findings == []


class TestDeterminismRule:
    def test_flags_unseeded_default_rng(self, tmp_path):
        write_module(
            tmp_path,
            "cad/bad.py",
            """
            import numpy as np

            def jitter():
                return np.random.default_rng().random()
            """,
        )
        report = run_on(tmp_path)
        assert rule_ids(report) == ["determinism"]

    def test_flags_none_seed_and_legacy_global_api(self, tmp_path):
        write_module(
            tmp_path,
            "core/bad.py",
            """
            import numpy as np

            def sample(n):
                rng = np.random.default_rng(None)
                return np.random.normal(size=n)
            """,
        )
        report = run_on(tmp_path)
        assert rule_ids(report) == ["determinism", "determinism"]

    def test_flags_stdlib_random_and_wall_clock(self, tmp_path):
        write_module(
            tmp_path,
            "runner/bad.py",
            """
            import random
            import time

            def pick(items):
                random.shuffle(items)
                return time.time()
            """,
        )
        report = run_on(tmp_path)
        assert rule_ids(report) == ["determinism", "determinism"]
        assert any("wall-clock" in f.message for f in report.findings)

    def test_flags_unseeded_random_state_in_thermal_place(self, tmp_path):
        write_module(
            tmp_path,
            "cad/thermal_place.py",
            """
            import numpy as np

            def perturb(densities):
                return densities + np.random.RandomState().rand()
            """,
        )
        report = run_on(tmp_path)
        assert rule_ids(report) == ["determinism"]
        assert "RandomState" in report.findings[0].message

    def test_flags_none_seeded_random_state(self, tmp_path):
        write_module(
            tmp_path,
            "cad/bad.py",
            """
            import numpy as np

            def sample():
                return np.random.RandomState(None).rand()
            """,
        )
        report = run_on(tmp_path)
        assert rule_ids(report) == ["determinism"]

    def test_passes_seeded_random_state_in_thermal_place(self, tmp_path):
        write_module(
            tmp_path,
            "cad/thermal_place.py",
            """
            import numpy as np

            def perturb(densities, seed):
                return densities + np.random.RandomState(seed).rand()
            """,
        )
        assert run_on(tmp_path).findings == []

    def test_passes_seeded_rng_and_observe_clock(self, tmp_path):
        write_module(
            tmp_path,
            "cad/good.py",
            """
            import numpy as np
            from repro.observe.clock import monotonic

            def place(seed):
                start = monotonic()
                rng = np.random.default_rng(seed)
                return rng.random(), monotonic() - start
            """,
        )
        assert run_on(tmp_path).findings == []

    def test_flags_direct_monotonic_clock_in_core(self, tmp_path):
        write_module(
            tmp_path,
            "cad/bad.py",
            """
            import time

            def timed():
                return time.perf_counter()
            """,
        )
        report = run_on(tmp_path)
        assert rule_ids(report) == ["determinism"]
        assert "repro.observe.clock" in report.findings[0].message

    def test_flags_clock_reads_outside_deterministic_core(self, tmp_path):
        write_module(
            tmp_path,
            "reporting/stamp.py",
            """
            import time

            def stamp():
                return time.time(), time.monotonic_ns()
            """,
        )
        report = run_on(tmp_path)
        assert rule_ids(report) == ["determinism", "determinism"]

    def test_rng_checks_stay_scoped_to_the_core(self, tmp_path):
        write_module(
            tmp_path,
            "reporting/ok.py",
            """
            import numpy as np

            def shade():
                return np.random.default_rng().random()
            """,
        )
        assert run_on(tmp_path).findings == []

    def test_observe_and_profiling_shim_may_read_clocks(self, tmp_path):
        write_module(
            tmp_path,
            "observe/clock.py",
            """
            import time

            def wall():
                return time.time()

            def monotonic():
                return time.perf_counter()
            """,
        )
        write_module(
            tmp_path,
            "profiling.py",
            """
            import time

            def legacy_stamp():
                return time.perf_counter()
            """,
        )
        assert run_on(tmp_path).findings == []


class TestPickleBoundaryRule:
    def test_flags_callable_field_and_lambda_default(self, tmp_path):
        write_module(
            tmp_path,
            "runner/spec.py",
            """
            from dataclasses import dataclass
            from typing import Callable

            @dataclass(frozen=True)
            class SweepJob:
                benchmark: str
                on_done: Callable = print
                scale: object = lambda x: x
            """,
        )
        report = run_on(tmp_path)
        assert rule_ids(report) == ["pickle-boundary", "pickle-boundary"]
        assert any("Callable" in f.message for f in report.findings)
        assert any("lambda" in f.message for f in report.findings)

    def test_flags_locally_defined_class_in_boundary_module(self, tmp_path):
        write_module(
            tmp_path,
            "runner/spec.py",
            """
            from dataclasses import dataclass

            @dataclass(frozen=True)
            class ExperimentSpec:
                benchmark: str

            def make_helper():
                class Helper:
                    pass
                return Helper()
            """,
        )
        report = run_on(tmp_path)
        assert rule_ids(report) == ["pickle-boundary"]
        assert "locally-defined" in report.findings[0].message

    def test_passes_plain_data_fields_and_factory_lambda(self, tmp_path):
        write_module(
            tmp_path,
            "runner/spec.py",
            """
            from dataclasses import dataclass, field
            from typing import Optional, Tuple

            @dataclass(frozen=True)
            class SweepJob:
                benchmark: str
                t_ambient: float
                corners: Tuple[float, ...] = (25.0,)
                tags: dict = field(default_factory=dict)
                note: Optional[str] = None
            """,
        )
        assert run_on(tmp_path).findings == []

    def test_ignores_modules_without_boundary_classes(self, tmp_path):
        write_module(
            tmp_path,
            "reporting/free.py",
            """
            def render():
                class Row:
                    pass
                return Row()
            """,
        )
        assert run_on(tmp_path).findings == []


CACHE_FIXTURE_PARAMS = """
    from dataclasses import dataclass

    @dataclass(frozen=True)
    class ArchParams:
        lut_size: int = 6
        cluster_size: int = 10
"""

CACHE_FIXTURE_FLOW_FIELDS = """
    import hashlib
    from dataclasses import fields

    FLOW_CACHE_VERSION = 4

    def arch_digest(arch):
        payload = repr(tuple((f.name, getattr(arch, f.name)) for f in fields(arch)))
        return hashlib.sha256(payload.encode()).hexdigest()[:16]
"""


class TestCacheKeyRule:
    def _project(self, tmp_path, params=CACHE_FIXTURE_PARAMS,
                 flow=CACHE_FIXTURE_FLOW_FIELDS):
        write_module(tmp_path, "arch/params.py", params)
        write_module(tmp_path, "cad/flow.py", flow)

    def _manifest(self, tmp_path, fields=("cluster_size", "lut_size"),
                  version=4):
        path = tmp_path / "manifest.json"
        ArchManifest(fields=tuple(fields), flow_cache_version=version).save(path)
        return path

    def test_passes_when_manifest_matches(self, tmp_path):
        self._project(tmp_path)
        path = self._manifest(tmp_path)
        report = run_on(tmp_path, manifest_path=path)
        assert report.findings == []

    def test_missing_manifest_is_a_warning(self, tmp_path):
        self._project(tmp_path)
        report = run_on(tmp_path)
        assert rule_ids(report) == ["cache-key"]
        assert report.findings[0].severity is Severity.WARNING
        assert report.ok

    def test_field_change_without_version_bump_is_an_error(self, tmp_path):
        self._project(tmp_path)
        path = self._manifest(tmp_path, fields=("lut_size",), version=4)
        report = run_on(tmp_path, manifest_path=path)
        assert rule_ids(report) == ["cache-key"]
        assert report.findings[0].severity is Severity.ERROR
        assert "without a FLOW_CACHE_VERSION bump" in report.findings[0].message

    def test_field_change_with_version_bump_requests_manifest_refresh(
        self, tmp_path
    ):
        self._project(tmp_path)
        path = self._manifest(tmp_path, fields=("lut_size",), version=3)
        report = run_on(tmp_path, manifest_path=path)
        assert rule_ids(report) == ["cache-key"]
        assert "refresh the manifest" in report.findings[0].message

    def test_digest_missing_a_field_is_an_error(self, tmp_path):
        flow = """
            import hashlib

            FLOW_CACHE_VERSION = 4

            def arch_digest(arch):
                payload = f"{arch.lut_size}"
                return hashlib.sha256(payload.encode()).hexdigest()[:16]
        """
        self._project(tmp_path, flow=flow)
        path = self._manifest(tmp_path)
        report = run_on(tmp_path, manifest_path=path)
        assert rule_ids(report) == ["cache-key"]
        assert "cluster_size" in report.findings[0].message

    def test_explicit_field_reads_cover_all_fields(self, tmp_path):
        flow = """
            import hashlib

            FLOW_CACHE_VERSION = 4

            def arch_digest(arch):
                payload = f"{arch.lut_size}_{arch.cluster_size}"
                return hashlib.sha256(payload.encode()).hexdigest()[:16]
        """
        self._project(tmp_path, flow=flow)
        path = self._manifest(tmp_path)
        assert run_on(tmp_path, manifest_path=path).findings == []

    def test_absent_archparams_project_is_exempt(self, tmp_path):
        write_module(tmp_path, "cad/other.py", "X = 1\n")
        assert run_on(tmp_path).findings == []


STORE_FIXTURE_CONFIG = """
    from dataclasses import dataclass

    @dataclass(frozen=True)
    class GuardbandConfig:
        delta_t: float = 2.0
        max_iterations: int = 20
"""

STORE_FIXTURE_STORE = """
    import hashlib
    from dataclasses import fields

    STORE_SCHEMA_VERSION = 1

    def store_digest(flow_cache_key, config, t_ambient, corner):
        payload = repr(
            tuple((f.name, getattr(config, f.name)) for f in fields(config))
        )
        return hashlib.sha256(payload.encode()).hexdigest()
"""


class TestStoreKeyRule:
    """The cache-key rule's result-store half: GuardbandConfig /
    store_digest / STORE_SCHEMA_VERSION must move together."""

    def _project(self, tmp_path, config=STORE_FIXTURE_CONFIG,
                 store=STORE_FIXTURE_STORE):
        write_module(tmp_path, "core/guardband.py", config)
        write_module(tmp_path, "store/store.py", store)

    def _manifest(self, tmp_path, fields=("delta_t", "max_iterations"),
                  version=1):
        path = tmp_path / "store_manifest.json"
        StoreManifest(
            fields=tuple(fields), store_schema_version=version
        ).save(path)
        return path

    def test_passes_when_manifest_matches(self, tmp_path):
        self._project(tmp_path)
        path = self._manifest(tmp_path)
        report = run_on(tmp_path, store_manifest_path=path)
        assert report.findings == []

    def test_missing_manifest_is_a_warning(self, tmp_path):
        self._project(tmp_path)
        report = run_on(tmp_path)
        assert rule_ids(report) == ["cache-key"]
        assert report.findings[0].severity is Severity.WARNING
        assert "store manifest" in report.findings[0].message
        assert report.ok

    def test_field_change_without_schema_bump_is_an_error(self, tmp_path):
        self._project(tmp_path)
        path = self._manifest(tmp_path, fields=("delta_t",), version=1)
        report = run_on(tmp_path, store_manifest_path=path)
        assert rule_ids(report) == ["cache-key"]
        assert report.findings[0].severity is Severity.ERROR
        assert "STORE_SCHEMA_VERSION bump" in report.findings[0].message

    def test_field_change_with_bump_requests_manifest_refresh(self, tmp_path):
        self._project(tmp_path)
        path = self._manifest(tmp_path, fields=("delta_t",), version=0)
        report = run_on(tmp_path, store_manifest_path=path)
        assert rule_ids(report) == ["cache-key"]
        assert "refresh the manifest" in report.findings[0].message

    def test_version_drift_alone_is_a_warning(self, tmp_path):
        self._project(tmp_path)
        path = self._manifest(tmp_path, version=2)
        report = run_on(tmp_path, store_manifest_path=path)
        assert rule_ids(report) == ["cache-key"]
        assert report.findings[0].severity is Severity.WARNING

    def test_digest_missing_a_field_is_an_error(self, tmp_path):
        store = """
            import hashlib

            STORE_SCHEMA_VERSION = 1

            def store_digest(flow_cache_key, config, t_ambient, corner):
                payload = f"{config.delta_t}"
                return hashlib.sha256(payload.encode()).hexdigest()
        """
        self._project(tmp_path, store=store)
        path = self._manifest(tmp_path)
        report = run_on(tmp_path, store_manifest_path=path)
        assert rule_ids(report) == ["cache-key"]
        assert "max_iterations" in report.findings[0].message

    def test_store_manifest_round_trip(self, tmp_path):
        path = tmp_path / "m.json"
        saved = StoreManifest(fields=("a", "b"), store_schema_version=3)
        saved.save(path)
        loaded = StoreManifest.load(path)
        assert loaded is not None
        assert set(loaded.fields) == {"a", "b"}
        assert loaded.store_schema_version == 3

    def test_current_store_manifest_matches_real_repo(self):
        from dataclasses import fields as dc_fields

        from repro.core.guardband import GuardbandConfig
        from repro.store import STORE_SCHEMA_VERSION

        modules, errors = load_modules(SRC_REPRO)
        assert errors == []
        project = Project(
            root=SRC_REPRO, modules=modules, manifest_path=Path("unused")
        )
        manifest = current_store_manifest(project)
        assert manifest is not None
        assert set(manifest.fields) == {
            f.name for f in dc_fields(GuardbandConfig)
        }
        assert manifest.store_schema_version == STORE_SCHEMA_VERSION

    def test_committed_store_manifest_is_current(self):
        from repro.analysis.engine import default_store_manifest_path

        committed = StoreManifest.load(default_store_manifest_path())
        assert committed is not None, (
            "store manifest missing; run python -m repro.analysis "
            "--update-manifest"
        )
        modules, _ = load_modules(SRC_REPRO)
        project = Project(
            root=SRC_REPRO, modules=modules, manifest_path=Path("unused")
        )
        live = current_store_manifest(project)
        assert live is not None
        assert sorted(committed.fields) == sorted(live.fields)
        assert committed.store_schema_version == live.store_schema_version


WIRE_FIXTURE_CLASSES = """
    from dataclasses import dataclass

    @dataclass(frozen=True)
    class Widget:
        size: int = 1
        color: str = "red"
"""

WIRE_FIXTURE_WIRE = """
    WIRE_SCHEMA_VERSION = 1

    def _decode_widget(payload):
        return payload

    _DECODERS = {
        "Widget": _decode_widget,
    }
"""


class TestWireSchemaRule:
    """The cache-key rule's wire half: every wire kind's field set must
    move together with WIRE_SCHEMA_VERSION."""

    def _project(self, tmp_path, classes=WIRE_FIXTURE_CLASSES,
                 wire=WIRE_FIXTURE_WIRE):
        write_module(tmp_path, "service/types.py", classes)
        write_module(tmp_path, "service/wire.py", wire)

    def _manifest(self, tmp_path, kinds=(("Widget", ("color", "size")),),
                  version=1):
        path = tmp_path / "wire_manifest.json"
        WireManifest(kinds=tuple(kinds), wire_schema_version=version).save(path)
        return path

    def test_passes_when_manifest_matches(self, tmp_path):
        self._project(tmp_path)
        path = self._manifest(tmp_path)
        assert run_on(tmp_path, wire_manifest_path=path).findings == []

    def test_missing_manifest_is_a_warning(self, tmp_path):
        self._project(tmp_path)
        report = run_on(tmp_path)
        assert rule_ids(report) == ["cache-key"]
        assert report.findings[0].severity is Severity.WARNING
        assert "wire manifest" in report.findings[0].message
        assert report.ok

    def test_field_change_without_version_bump_is_an_error(self, tmp_path):
        self._project(tmp_path)
        path = self._manifest(tmp_path, kinds=(("Widget", ("size",)),))
        report = run_on(tmp_path, wire_manifest_path=path)
        assert rule_ids(report) == ["cache-key"]
        assert report.findings[0].severity is Severity.ERROR
        assert "WIRE_SCHEMA_VERSION bump" in report.findings[0].message
        assert "Widget added: color" in report.findings[0].message

    def test_new_kind_without_version_bump_is_an_error(self, tmp_path):
        self._project(tmp_path)
        path = self._manifest(tmp_path, kinds=())
        report = run_on(tmp_path, wire_manifest_path=path)
        assert rule_ids(report) == ["cache-key"]
        assert report.findings[0].severity is Severity.ERROR
        assert "Widget: new kind" in report.findings[0].message

    def test_field_change_with_bump_requests_manifest_refresh(self, tmp_path):
        self._project(tmp_path)
        path = self._manifest(tmp_path, kinds=(("Widget", ("size",)),),
                              version=0)
        report = run_on(tmp_path, wire_manifest_path=path)
        assert rule_ids(report) == ["cache-key"]
        assert "refresh the manifest" in report.findings[0].message

    def test_version_drift_alone_is_a_warning(self, tmp_path):
        self._project(tmp_path)
        path = self._manifest(tmp_path, version=2)
        report = run_on(tmp_path, wire_manifest_path=path)
        assert rule_ids(report) == ["cache-key"]
        assert report.findings[0].severity is Severity.WARNING

    def test_kind_without_class_is_an_error(self, tmp_path):
        write_module(tmp_path, "service/wire.py", WIRE_FIXTURE_WIRE)
        path = self._manifest(tmp_path)
        report = run_on(tmp_path, wire_manifest_path=path)
        assert set(rule_ids(report)) == {"cache-key"}
        messages = [f.message for f in report.findings]
        assert any("names no class" in m for m in messages)

    def test_wire_manifest_round_trip(self, tmp_path):
        path = tmp_path / "m.json"
        saved = WireManifest(
            kinds=(("A", ("x", "y")), ("B", ("z",))), wire_schema_version=4
        )
        saved.save(path)
        loaded = WireManifest.load(path)
        assert loaded is not None
        assert loaded.fields_by_kind() == {"A": {"x", "y"}, "B": {"z"}}
        assert loaded.wire_schema_version == 4

    def test_current_wire_manifest_matches_wire_field_names(self):
        from repro.service.wire import (
            WIRE_KINDS,
            WIRE_SCHEMA_VERSION,
            wire_field_names,
        )

        modules, errors = load_modules(SRC_REPRO)
        assert errors == []
        project = Project(
            root=SRC_REPRO, modules=modules, manifest_path=Path("unused")
        )
        manifest = current_wire_manifest(project)
        assert manifest is not None
        assert manifest.wire_schema_version == WIRE_SCHEMA_VERSION
        by_kind = manifest.fields_by_kind()
        assert sorted(by_kind) == sorted(WIRE_KINDS)
        for kind in WIRE_KINDS:
            assert by_kind[kind] == set(wire_field_names(kind)), kind

    def test_committed_wire_manifest_is_current(self):
        from repro.analysis.engine import default_wire_manifest_path

        committed = WireManifest.load(default_wire_manifest_path())
        assert committed is not None, (
            "wire manifest missing; run python -m repro.analysis "
            "--update-manifest"
        )
        modules, _ = load_modules(SRC_REPRO)
        project = Project(
            root=SRC_REPRO, modules=modules, manifest_path=Path("unused")
        )
        live = current_wire_manifest(project)
        assert live is not None
        assert committed.fields_by_kind() == live.fields_by_kind()
        assert committed.wire_schema_version == live.wire_schema_version


class TestFrozenMutationRule:
    def test_flags_setattr_outside_post_init(self, tmp_path):
        write_module(
            tmp_path,
            "cad/bad.py",
            """
            def tweak(params):
                object.__setattr__(params, "lut_size", 7)
            """,
        )
        report = run_on(tmp_path)
        assert rule_ids(report) == ["frozen-mutation"]
        assert "tweak()" in report.findings[0].message

    def test_flags_module_level_setattr(self, tmp_path):
        write_module(
            tmp_path,
            "core/bad.py",
            """
            CONFIG = make_config()
            object.__setattr__(CONFIG, "mode", "fast")
            """,
        )
        report = run_on(tmp_path)
        assert rule_ids(report) == ["frozen-mutation"]
        assert "module level" in report.findings[0].message

    def test_passes_post_init_and_setstate(self, tmp_path):
        write_module(
            tmp_path,
            "cad/good.py",
            """
            from dataclasses import dataclass

            @dataclass(frozen=True)
            class Node:
                raw: str
                norm: str = ""

                def __post_init__(self):
                    object.__setattr__(self, "norm", self.raw.lower())

                def __setstate__(self, state):
                    for key, value in state.items():
                        object.__setattr__(self, key, value)
            """,
        )
        assert run_on(tmp_path).findings == []


class TestFloatEqualityRule:
    def test_flags_float_literal_comparison(self, tmp_path):
        write_module(
            tmp_path,
            "thermal/bad.py",
            """
            def converged(delta):
                return delta == 0.0
            """,
        )
        report = run_on(tmp_path)
        assert rule_ids(report) == ["float-equality"]
        assert report.findings[0].severity is Severity.WARNING

    def test_flags_physical_quantity_comparison(self, tmp_path):
        write_module(
            tmp_path,
            "power/bad.py",
            """
            def same_point(t_ambient, corner_celsius):
                return t_ambient == corner_celsius
            """,
        )
        report = run_on(tmp_path)
        assert rule_ids(report) == ["float-equality"]

    def test_warnings_do_not_gate(self, tmp_path):
        write_module(tmp_path, "thermal/bad.py", "OK = 1.0 == 1.0\n")
        report = run_on(tmp_path)
        assert report.findings and report.ok

    def test_passes_tolerant_and_identifier_comparisons(self, tmp_path):
        write_module(
            tmp_path,
            "cad/good.py",
            """
            import math

            def close(delay_a, delay_b):
                return math.isclose(delay_a, delay_b, rel_tol=1e-9)

            def same_entry(cache_key, other_key):
                return cache_key == other_key
            """,
        )
        assert run_on(tmp_path).findings == []

    def test_ignores_non_numeric_modules(self, tmp_path):
        write_module(
            tmp_path,
            "reporting/ok.py",
            "def eq(power_w, other_power): return power_w == other_power\n",
        )
        assert run_on(tmp_path).findings == []


def build_graph(root: Path):
    from repro.analysis.callgraph import build_call_graph

    modules, errors = load_modules(root)
    assert errors == []
    project = Project(
        root=root, modules=modules, manifest_path=root / "manifest.json"
    )
    return build_call_graph(project)


def error_ids(report):
    return [f.rule_id for f in report.findings
            if f.severity is Severity.ERROR]


class TestCallGraph:
    def test_recursion_yields_a_self_edge_and_terminates(self, tmp_path):
        write_module(
            tmp_path,
            "engine/rec.py",
            """
            def countdown(n):
                if n:
                    return countdown(n - 1)
                return 0
            """,
        )
        graph = build_graph(tmp_path)
        key = "engine/rec.py::countdown"
        assert (key, key, False) in graph.edges
        assert key not in graph.loop_reachable

    def test_self_method_calls_resolve_within_the_class(self, tmp_path):
        write_module(
            tmp_path,
            "engine/cls.py",
            """
            class Engine:
                def run(self):
                    return self.step()

                def step(self):
                    return 1
            """,
        )
        graph = build_graph(tmp_path)
        assert (
            "engine/cls.py::Engine.run",
            "engine/cls.py::Engine.step",
            False,
        ) in graph.edges

    def test_facade_import_resolves_through_exports_table(self, tmp_path):
        write_module(
            tmp_path,
            "api.py",
            """
            _EXPORTS = {"solve": "repro.thermal.solver"}
            """,
        )
        write_module(
            tmp_path,
            "thermal/solver.py",
            """
            def solve():
                return 0
            """,
        )
        write_module(
            tmp_path,
            "cli/go.py",
            """
            from repro.api import solve

            def go():
                return solve()
            """,
        )
        graph = build_graph(tmp_path)
        assert (
            "cli/go.py::go",
            "thermal/solver.py::solve",
            False,
        ) in graph.edges

    def test_executor_boundary_cuts_loop_reachability(self, tmp_path):
        write_module(
            tmp_path,
            "engine/app.py",
            """
            import asyncio

            def probe():
                return 1

            def helper():
                return 2

            async def main():
                loop = asyncio.get_running_loop()
                await loop.run_in_executor(None, probe)
                return helper()
            """,
        )
        graph = build_graph(tmp_path)
        main_key = "engine/app.py::main"
        assert main_key in graph.loop_reachable
        assert "engine/app.py::helper" in graph.loop_reachable
        # The executor hand-off is an edge, but not a loop-side one.
        assert (main_key, "engine/app.py::probe", True) in graph.edges
        assert "engine/app.py::probe" not in graph.loop_reachable

    def test_reach_path_names_the_async_origin(self, tmp_path):
        write_module(
            tmp_path,
            "engine/chain.py",
            """
            def leaf():
                return 0

            def mid():
                return leaf()

            async def root():
                return mid()
            """,
        )
        graph = build_graph(tmp_path)
        path = graph.reach_path("engine/chain.py::leaf")
        assert "engine/chain.py:root" in path
        assert "engine/chain.py:leaf" in path


class TestAsyncBlockingRule:
    def test_flags_blocking_store_get_through_the_call_graph(self, tmp_path):
        write_module(
            tmp_path,
            "store/store.py",
            """
            class ResultStore:
                def get(self, digest):
                    return None
            """,
        )
        write_module(
            tmp_path,
            "engine/sched.py",
            """
            from repro.store.store import ResultStore

            def helper(store: ResultStore, digest: str):
                return store.get(digest)

            async def serve(store: ResultStore):
                return helper(store, "d")
            """,
        )
        report = run_on(tmp_path)
        assert rule_ids(report) == ["async-blocking"]
        finding = report.findings[0]
        assert finding.path == "engine/sched.py"
        assert "store.get" in finding.message
        assert "run_in_executor" in finding.message
        # Call-graph-deep: the chain names the async origin, not just
        # the enclosing function.
        assert "engine/sched.py:serve" in finding.message

    def test_flags_time_sleep_directly_in_async_def(self, tmp_path):
        write_module(
            tmp_path,
            "engine/app.py",
            """
            import time

            async def tick():
                time.sleep(0.1)
            """,
        )
        report = run_on(tmp_path)
        assert rule_ids(report) == ["async-blocking"]
        assert "asyncio.sleep" in report.findings[0].message

    def test_passes_when_handed_to_an_executor(self, tmp_path):
        write_module(
            tmp_path,
            "engine/app.py",
            """
            import asyncio
            import time

            def probe():
                time.sleep(0.1)
                return open("x").read()

            async def main():
                loop = asyncio.get_running_loop()
                return await loop.run_in_executor(None, probe)
            """,
        )
        assert run_on(tmp_path).findings == []

    def test_passes_blocking_call_never_reached_from_async(self, tmp_path):
        write_module(
            tmp_path,
            "cli/tool.py",
            """
            import time

            def wait():
                time.sleep(1.0)
            """,
        )
        assert run_on(tmp_path).findings == []


class TestLoopAffinityRule:
    def test_flags_call_soon_from_non_coroutine_code(self, tmp_path):
        write_module(
            tmp_path,
            "engine/kick.py",
            """
            import asyncio

            def arm(loop: asyncio.AbstractEventLoop, stop):
                loop.call_soon(stop.set)
            """,
        )
        report = run_on(tmp_path)
        assert rule_ids(report) == ["loop-affinity"]
        assert "call_soon_threadsafe" in report.findings[0].message

    def test_passes_threadsafe_variant_and_on_loop_use(self, tmp_path):
        write_module(
            tmp_path,
            "engine/kick.py",
            """
            import asyncio

            def arm(loop: asyncio.AbstractEventLoop, stop):
                loop.call_soon_threadsafe(stop.set)

            async def arm_on_loop(stop):
                loop = asyncio.get_running_loop()
                loop.call_soon(stop.set)
            """,
        )
        assert run_on(tmp_path).findings == []


class TestExceptionFlowRule:
    def test_flags_bare_reraise_in_broad_handler(self, tmp_path):
        write_module(
            tmp_path,
            "service/dispatch.py",
            """
            def dispatch(fn):
                try:
                    return fn()
                except Exception:
                    raise
            """,
        )
        report = run_on(tmp_path)
        assert rule_ids(report) == ["exception-flow"]

    def test_flags_unguarded_from_wire_call(self, tmp_path):
        write_module(
            tmp_path,
            "service/handler.py",
            """
            from repro.service.wire import from_wire

            def handle(doc):
                return from_wire(doc)
            """,
        )
        report = run_on(tmp_path)
        assert rule_ids(report) == ["exception-flow"]
        assert "WireError" in report.findings[0].message

    def test_passes_guarded_conversion_and_non_service_code(self, tmp_path):
        write_module(
            tmp_path,
            "service/handler.py",
            """
            from repro.service.wire import WireError, from_wire

            def handle(doc):
                try:
                    return from_wire(doc)
                except WireError:
                    return None
            """,
        )
        write_module(
            tmp_path,
            "cad/tool.py",
            """
            def passthrough(fn):
                try:
                    return fn()
                except Exception:
                    raise
            """,
        )
        assert run_on(tmp_path).findings == []


class TestApiSurfaceRule:
    def _facade(self, exports_line: str) -> str:
        return (
            "from typing import TYPE_CHECKING\n"
            "\n"
            "if TYPE_CHECKING:\n"
            "    from repro.thermal.solver import solve\n"
            "\n"
            f"{exports_line}\n"
        )

    def test_passes_coherent_facade(self, tmp_path):
        write_module(
            tmp_path,
            "api.py",
            self._facade('_EXPORTS = {"solve": "repro.thermal.solver"}'),
        )
        write_module(tmp_path, "thermal/solver.py", "def solve():\n    return 0\n")
        assert run_on(tmp_path).findings == []

    def test_flags_export_to_missing_module(self, tmp_path):
        write_module(
            tmp_path,
            "api.py",
            self._facade('_EXPORTS = {"solve": "repro.thermal.solver"}'),
        )
        write_module(tmp_path, "cad/ok.py", "X = 1\n")
        report = run_on(tmp_path)
        assert error_ids(report) == ["api-surface"]

    def test_flags_export_of_unbound_name(self, tmp_path):
        write_module(
            tmp_path,
            "api.py",
            self._facade('_EXPORTS = {"solve": "repro.thermal.solver"}'),
        )
        write_module(tmp_path, "thermal/solver.py", "def other():\n    return 0\n")
        report = run_on(tmp_path)
        assert error_ids(report) == ["api-surface"]
        assert "solve" in report.findings[0].message

    def test_flags_duplicate_export_keys(self, tmp_path):
        write_module(
            tmp_path,
            "api.py",
            self._facade(
                '_EXPORTS = {"solve": "repro.thermal.solver", '
                '"solve": "repro.thermal.solver"}'
            ),
        )
        write_module(tmp_path, "thermal/solver.py", "def solve():\n    return 0\n")
        report = run_on(tmp_path)
        assert "api-surface" in error_ids(report)


class TestSuppression:
    def test_inline_suppression_drops_the_finding(self, tmp_path):
        write_module(
            tmp_path,
            "thermal/ok.py",
            """
            def to_kelvin(t_c):
                return t_c + 273.15  # repro-lint: ignore[units] fixture
            """,
        )
        report = run_on(tmp_path)
        assert report.findings == []
        assert [f.rule_id for f in report.suppressed] == ["units"]

    def test_bare_ignore_suppresses_every_rule(self, tmp_path):
        write_module(
            tmp_path,
            "thermal/ok.py",
            "K = 273.15  # repro-lint: ignore\n",
        )
        report = run_on(tmp_path)
        assert report.findings == []
        assert len(report.suppressed) == 1

    def test_suppression_is_rule_specific(self, tmp_path):
        write_module(
            tmp_path,
            "thermal/partial.py",
            "K = 273.15  # repro-lint: ignore[determinism]\n",
        )
        report = run_on(tmp_path)
        assert rule_ids(report) == ["units"]

    def test_unknown_rule_in_suppression_is_an_error(self, tmp_path):
        write_module(
            tmp_path,
            "thermal/typo.py",
            "X = 1  # repro-lint: ignore[unitz]\n",
        )
        report = run_on(tmp_path)
        assert rule_ids(report) == ["unknown-suppression"]
        assert not report.ok

    def test_marker_inside_docstring_is_not_a_suppression(self, tmp_path):
        source = (
            '"""Mentions # repro-lint: ignore[units] as prose."""\n'
            "K = 273.15\n"
        )
        write_module(tmp_path, "thermal/doc.py", source)
        report = run_on(tmp_path)
        assert rule_ids(report) == ["units"]

    def test_suppressions_for_parses_rule_lists(self):
        table = suppressions_for(
            "x = 1  # repro-lint: ignore[units, determinism]\n"
        )
        assert table == {1: frozenset({"units", "determinism"})}


class TestBaseline:
    def _violating_module(self, tmp_path):
        write_module(
            tmp_path,
            "thermal/legacy.py",
            """
            def to_kelvin(t_c):
                return t_c + 273.15
            """,
        )

    def test_round_trip(self, tmp_path):
        self._violating_module(tmp_path)
        first = run_on(tmp_path)
        assert not first.ok
        baseline_path = tmp_path / "baseline.json"
        Baseline.from_findings(first.findings).save(baseline_path)

        second = run_on(
            tmp_path, baseline=Baseline.load(baseline_path)
        )
        assert second.ok
        assert [f.rule_id for f in second.baselined] == ["units"]
        assert second.new_errors == []

    def test_baselined_finding_survives_line_drift(self, tmp_path):
        self._violating_module(tmp_path)
        baseline = Baseline.from_findings(run_on(tmp_path).findings)
        write_module(
            tmp_path,
            "thermal/legacy.py",
            """
            # a new leading comment shifts every line down


            def to_kelvin(t_c):
                return t_c + 273.15
            """,
        )
        report = run_on(tmp_path, baseline=baseline)
        assert report.ok and len(report.baselined) == 1

    def test_second_identical_violation_is_new(self, tmp_path):
        self._violating_module(tmp_path)
        baseline = Baseline.from_findings(run_on(tmp_path).findings)
        write_module(
            tmp_path,
            "thermal/legacy.py",
            """
            def to_kelvin(t_c):
                return t_c + 273.15

            def to_kelvin_again(t_c):
                return t_c + 273.15
            """,
        )
        report = run_on(tmp_path, baseline=baseline)
        assert not report.ok
        assert len(report.new_errors) == 1
        assert len(report.baselined) == 1

    def test_fixed_violation_marks_baseline_stale(self, tmp_path):
        self._violating_module(tmp_path)
        baseline = Baseline.from_findings(run_on(tmp_path).findings)
        write_module(tmp_path, "thermal/legacy.py", "X = 1\n")
        report = run_on(tmp_path, baseline=baseline)
        assert report.stale_baseline

    def test_load_missing_file_is_empty(self, tmp_path):
        baseline = Baseline.load(tmp_path / "absent.json")
        assert baseline.counts == {}

    def test_load_rejects_unknown_version(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text(json.dumps({"version": 99, "entries": {}}))
        with pytest.raises(ValueError):
            Baseline.load(path)


class TestManifest:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "m.json"
        manifest = ArchManifest(fields=("a", "b"), flow_cache_version=4)
        manifest.save(path)
        loaded = ArchManifest.load(path)
        assert loaded.fields == ("a", "b")
        assert loaded.flow_cache_version == 4

    def test_current_manifest_matches_real_repo(self):
        from dataclasses import fields as dc_fields

        from repro.arch.params import ArchParams
        from repro.cad.flow import FLOW_CACHE_VERSION

        modules, errors = load_modules(SRC_REPRO)
        assert errors == []
        project = Project(
            root=SRC_REPRO, modules=modules, manifest_path=Path("unused")
        )
        manifest = current_manifest(project)
        assert manifest is not None
        assert set(manifest.fields) == {f.name for f in dc_fields(ArchParams)}
        assert manifest.flow_cache_version == FLOW_CACHE_VERSION


class TestEngine:
    def test_syntax_error_becomes_parse_error_finding(self, tmp_path):
        write_module(tmp_path, "cad/broken.py", "def f(:\n")
        report = run_on(tmp_path)
        assert rule_ids(report) == ["parse-error"]
        assert not report.ok

    def test_findings_are_source_ordered(self, tmp_path):
        write_module(tmp_path, "thermal/b.py", "X = 273.15\nY = 298.15\n")
        write_module(tmp_path, "thermal/a.py", "Z = 273.15\n")
        report = run_on(tmp_path)
        assert [(f.path, f.line) for f in report.findings] == [
            ("thermal/a.py", 1),
            ("thermal/b.py", 1),
            ("thermal/b.py", 2),
        ]


class TestCli:
    def test_clean_fixture_exits_zero(self, tmp_path, capsys):
        write_module(tmp_path, "cad/ok.py", "X = 1\n")
        code = cli_main([str(tmp_path)])
        assert code == 0
        assert "0 new error(s)" in capsys.readouterr().out

    def test_violation_exits_nonzero_with_location(self, tmp_path, capsys):
        write_module(tmp_path, "thermal/bad.py", "K = 273.15\n")
        code = cli_main([str(tmp_path)])
        out = capsys.readouterr().out
        assert code == 1
        assert "thermal/bad.py:1:5: error[units]" in out

    def test_json_mode(self, tmp_path, capsys):
        write_module(tmp_path, "thermal/bad.py", "K = 273.15\n")
        code = cli_main([str(tmp_path), "--json"])
        payload = json.loads(capsys.readouterr().out)
        assert code == 1
        assert payload["ok"] is False
        assert payload["findings"][0]["rule"] == "units"

    def test_update_baseline_then_clean(self, tmp_path, capsys):
        write_module(tmp_path, "thermal/bad.py", "K = 273.15\n")
        baseline = tmp_path / "baseline.json"
        assert cli_main(
            [str(tmp_path), "--baseline", str(baseline), "--update-baseline"]
        ) == 0
        assert cli_main([str(tmp_path), "--baseline", str(baseline)]) == 0
        out = capsys.readouterr().out
        assert "baselined" in out

    def test_update_manifest_roundtrip(self, tmp_path):
        write_module(tmp_path, "arch/params.py", CACHE_FIXTURE_PARAMS)
        write_module(tmp_path, "cad/flow.py", CACHE_FIXTURE_FLOW_FIELDS)
        manifest = tmp_path / "manifest.json"
        assert cli_main(
            [str(tmp_path), "--manifest", str(manifest), "--update-manifest"]
        ) == 0
        assert cli_main([str(tmp_path), "--manifest", str(manifest)]) == 0

    def test_update_manifest_writes_store_manifest_too(self, tmp_path):
        write_module(tmp_path, "arch/params.py", CACHE_FIXTURE_PARAMS)
        write_module(tmp_path, "cad/flow.py", CACHE_FIXTURE_FLOW_FIELDS)
        write_module(tmp_path, "core/guardband.py", STORE_FIXTURE_CONFIG)
        write_module(tmp_path, "store/store.py", STORE_FIXTURE_STORE)
        manifest = tmp_path / "manifest.json"
        store_manifest = tmp_path / "store_manifest.json"
        assert cli_main(
            [str(tmp_path), "--manifest", str(manifest),
             "--store-manifest", str(store_manifest), "--update-manifest"]
        ) == 0
        loaded = StoreManifest.load(store_manifest)
        assert loaded is not None
        assert set(loaded.fields) == {"delta_t", "max_iterations"}
        assert cli_main(
            [str(tmp_path), "--manifest", str(manifest),
             "--store-manifest", str(store_manifest)]
        ) == 0

    def test_update_manifest_writes_wire_manifest_too(self, tmp_path):
        write_module(tmp_path, "arch/params.py", CACHE_FIXTURE_PARAMS)
        write_module(tmp_path, "cad/flow.py", CACHE_FIXTURE_FLOW_FIELDS)
        write_module(tmp_path, "core/guardband.py", STORE_FIXTURE_CONFIG)
        write_module(tmp_path, "store/store.py", STORE_FIXTURE_STORE)
        write_module(tmp_path, "service/types.py", WIRE_FIXTURE_CLASSES)
        write_module(tmp_path, "service/wire.py", WIRE_FIXTURE_WIRE)
        manifest = tmp_path / "manifest.json"
        store_manifest = tmp_path / "store_manifest.json"
        wire_manifest = tmp_path / "wire_manifest.json"
        args = [str(tmp_path), "--manifest", str(manifest),
                "--store-manifest", str(store_manifest),
                "--wire-manifest", str(wire_manifest)]
        assert cli_main(args + ["--update-manifest"]) == 0
        loaded = WireManifest.load(wire_manifest)
        assert loaded is not None
        assert loaded.fields_by_kind() == {"Widget": {"size", "color"}}
        assert cli_main(args) == 0

    def test_list_rules(self, capsys):
        assert cli_main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in (
            "units",
            "determinism",
            "pickle-boundary",
            "cache-key",
            "frozen-mutation",
            "float-equality",
            "async-blocking",
            "loop-affinity",
            "exception-flow",
            "api-surface",
        ):
            assert rule_id in out

    def test_select_runs_only_named_rules(self, tmp_path):
        write_module(tmp_path, "thermal/bad.py", "K = 273.15\n")
        assert cli_main([str(tmp_path)]) == 1
        assert cli_main([str(tmp_path), "--select", "determinism"]) == 0

    def test_ignore_skips_named_rules(self, tmp_path):
        write_module(tmp_path, "thermal/bad.py", "K = 273.15\n")
        assert cli_main([str(tmp_path), "--ignore", "units"]) == 0

    def test_unknown_rule_id_is_a_usage_error(self, tmp_path, capsys):
        write_module(tmp_path, "cad/ok.py", "X = 1\n")
        for option in ("--select", "--ignore"):
            with pytest.raises(SystemExit) as excinfo:
                cli_main([str(tmp_path), option, "unitz"])
            assert excinfo.value.code == 2
            assert "unitz" in capsys.readouterr().err

    def test_select_ignore_must_leave_a_rule(self, tmp_path):
        write_module(tmp_path, "cad/ok.py", "X = 1\n")
        with pytest.raises(SystemExit) as excinfo:
            cli_main([str(tmp_path), "--select", "units",
                      "--ignore", "units"])
        assert excinfo.value.code == 2

    def test_suppression_of_deselected_rule_is_still_known(self, tmp_path):
        # A suppression naming a rule outside --select must not read as
        # a typo: the full registry stays the valid-id universe.
        write_module(
            tmp_path,
            "thermal/ok.py",
            "K = 273.15  # repro-lint: ignore[units] fixture\n",
        )
        assert cli_main([str(tmp_path), "--select", "determinism"]) == 0


class TestRealRepo:
    """The committed tree must stay clean under its committed baseline."""

    def test_full_pass_over_src_repro_is_clean(self):
        report = run_analysis(root=SRC_REPRO)
        formatted = "\n".join(f.format() for f in report.new_errors)
        assert report.new_errors == [], f"new lint errors:\n{formatted}"
        assert report.n_files >= 60

    def test_module_entry_point(self):
        proc = subprocess.run(
            [sys.executable, "-m", "repro.analysis", "--json"],
            capture_output=True,
            text=True,
            env={"PYTHONPATH": str(SRC_REPRO.parent), "PATH": "/usr/bin:/bin"},
        )
        assert proc.returncode == 0, proc.stdout + proc.stderr
        payload = json.loads(proc.stdout)
        assert payload["ok"] is True

    def test_call_graph_resolves_intra_package_calls(self):
        """Coherence gate: the symbol table must actually cover the tree.

        A call-graph rule is only as good as its resolution rate — if
        the builder silently failed to resolve intra-package calls, the
        concurrency rules would pass vacuously.  ≥95% of calls with an
        intra-package shape must resolve to a known definition.
        """
        graph = build_graph(SRC_REPRO)
        stats = graph.stats()
        assert stats["n_candidates"] >= 200
        assert stats["resolved_fraction"] >= 0.95
        # The service layer's async roots were found ...
        assert any(
            key.startswith("service/scheduler.py::")
            for key in graph.loop_reachable
        )
        # ... and the scheduler's store probe crosses an executor
        # boundary, never a loop-side edge.
        probe_edges = [
            (caller, callee, via)
            for caller, callee, via in graph.edges
            if callee == "service/scheduler.py::SweepScheduler._probe_store"
        ]
        assert probe_edges and all(via for _, _, via in probe_edges)
        assert (
            "store/store.py::ResultStore.load" not in graph.loop_reachable
        )
