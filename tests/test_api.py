"""Tests for the ``repro.api`` facade and the top-level deprecation shim."""

from __future__ import annotations

import subprocess
import sys
import warnings
from pathlib import Path

import pytest

import repro
import repro.api as api

SRC_DIR = str(Path(__file__).resolve().parents[1] / "src")


class TestFacade:
    def test_all_matches_export_table(self):
        assert api.__all__ == sorted(api._EXPORTS)

    def test_every_export_resolves(self):
        for name in api.__all__:
            assert getattr(api, name) is not None, name

    def test_unknown_attribute_raises(self):
        with pytest.raises(AttributeError, match="no attribute 'nope'"):
            api.nope

    def test_dir_lists_exports(self):
        listed = dir(api)
        for name in api.__all__:
            assert name in listed

    def test_observe_export_is_the_module(self):
        from repro import observe

        assert api.observe is observe

    def test_resolves_to_the_owning_modules(self):
        from repro.core.guardband import thermal_aware_guardband
        from repro.runner import run_sweep
        from repro.store import open_store

        assert api.thermal_aware_guardband is thermal_aware_guardband
        assert api.run_sweep is run_sweep
        assert api.open_store is open_store

    def test_import_is_lazy(self):
        # A fresh interpreter importing repro.api must not pull in the
        # heavyweight engine/flow modules until an attribute is touched.
        code = (
            "import sys; import repro.api; "
            "assert 'repro.runner' not in sys.modules, 'runner loaded'; "
            "assert 'repro.cad.flow' not in sys.modules, 'flow loaded'; "
            "import repro.api as a; a.run_sweep; "
            "assert 'repro.runner' in sys.modules"
        )
        subprocess.run(
            [sys.executable, "-c", code],
            check=True, env={"PYTHONPATH": SRC_DIR, "PATH": ""},
        )


class TestTopLevelDeprecation:
    def test_legacy_access_warns_and_resolves(self):
        with pytest.warns(DeprecationWarning, match="repro.api"):
            legacy = repro.run_flow
        assert legacy is api.run_flow

    def test_warns_on_every_access(self):
        # The shim must not cache: each legacy use keeps nudging.
        for _ in range(2):
            with pytest.warns(DeprecationWarning):
                repro.GuardbandConfig

    def test_eager_module_exports_do_not_warn(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert repro.observe is not None
            assert repro.profiling is not None

    def test_unknown_attribute_raises(self):
        with pytest.raises(AttributeError, match="no attribute"):
            repro.not_a_thing

    def test_all_names_still_resolve(self):
        with pytest.warns(DeprecationWarning):
            for name in repro._DEPRECATED_EXPORTS:
                assert getattr(repro, name) is not None, name

    def test_version_bumped(self):
        assert repro.__version__ >= "1.3.0"
