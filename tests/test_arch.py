"""Tests for architecture parameters, layout and RR graph."""

import pytest

from repro.arch.layout import FabricLayout, TileType
from repro.arch.params import ArchParams
from repro.arch.rrgraph import RRNodeType, build_rr_graph


class TestArchParams:
    def test_defaults_match_table1(self):
        arch = ArchParams()
        assert arch.lut_size == 6
        assert arch.cluster_size == 10
        assert arch.channel_tracks == 320
        assert arch.wire_segment_length == 4
        assert arch.cluster_inputs == 40
        assert arch.sb_mux_size == 12
        assert arch.cb_mux_size == 64
        assert arch.local_mux_size == 25
        assert arch.vdd == pytest.approx(0.8)
        assert arch.vdd_low_power == pytest.approx(0.95)
        assert arch.bram_rows * arch.bram_width_bits == 1024 * 32

    def test_table1_rows_complete(self):
        rows = dict(ArchParams().table1_rows())
        assert rows["K"] == "6"
        assert rows["Channel tracks"] == "320"
        assert "BRAM" in rows

    def test_frozen_and_hashable(self):
        a, b = ArchParams(), ArchParams()
        assert a == b and hash(a) == hash(b)

    def test_with_changes(self):
        arch = ArchParams().with_changes(lut_size=4)
        assert arch.lut_size == 4
        assert ArchParams().lut_size == 6

    @pytest.mark.parametrize(
        "field,value",
        [
            ("lut_size", 1),
            ("cluster_size", 0),
            ("channel_tracks", 1),
            ("wire_segment_length", 0),
            ("fc_in", 0.0),
            ("fc_out", 1.5),
            ("sb_mux_size", 1),
        ],
    )
    def test_rejects_bad_values(self, field, value):
        with pytest.raises(ValueError):
            ArchParams().with_changes(**{field: value})


class TestFabricLayout:
    @pytest.fixture(scope="class")
    def layout(self):
        return FabricLayout(ArchParams(), 12, 12)

    def test_perimeter_is_io(self, layout):
        for x in range(layout.width):
            assert layout.tile(x, 0).type == TileType.IO
            assert layout.tile(x, layout.height - 1).type == TileType.IO

    def test_has_hard_columns(self, layout):
        assert layout.locations_of(TileType.BRAM)
        assert layout.locations_of(TileType.DSP)

    def test_bram_and_dsp_columns_disjoint(self, layout):
        bram_cols = {x for x, _ in layout.locations_of(TileType.BRAM)}
        dsp_cols = {x for x, _ in layout.locations_of(TileType.DSP)}
        assert not bram_cols & dsp_cols

    def test_tile_index_round_trip(self, layout):
        for (x, y) in [(0, 0), (5, 7), (11, 11)]:
            index = layout.tile_index(x, y)
            tile = list(layout.tiles())[index]
            assert (tile.x, tile.y) == (x, y)

    def test_out_of_range_rejected(self, layout):
        with pytest.raises(IndexError):
            layout.tile(12, 0)
        with pytest.raises(IndexError):
            layout.tile_index(-1, 3)

    def test_neighbors_interior_and_corner(self, layout):
        assert len(layout.neighbors(5, 5)) == 4
        assert len(layout.neighbors(0, 0)) == 2

    def test_capacity_counts(self, layout):
        assert layout.capacity_of(TileType.CLB) == len(
            layout.locations_of(TileType.CLB)
        )
        assert layout.capacity_of(TileType.IO) == 8 * len(
            layout.locations_of(TileType.IO)
        )

    def test_for_netlist_fits(self):
        arch = ArchParams()
        layout = FabricLayout.for_netlist(arch, n_clb=30, n_bram=4, n_dsp=2, n_io=40)
        assert layout.capacity_of(TileType.CLB) >= 30
        assert layout.capacity_of(TileType.BRAM) >= 4
        assert layout.capacity_of(TileType.DSP) >= 2
        assert layout.capacity_of(TileType.IO) >= 40

    def test_for_netlist_rejects_monster(self):
        with pytest.raises(ValueError, match="does not fit"):
            FabricLayout.for_netlist(
                ArchParams(), n_clb=10**6, n_bram=0, n_dsp=0, n_io=0, max_dim=16
            )

    def test_rejects_tiny_grid(self):
        with pytest.raises(ValueError):
            FabricLayout(ArchParams(), 3, 3)


class TestRRGraph:
    @pytest.fixture(scope="class")
    def graph(self):
        arch = ArchParams().with_changes(routed_channel_tracks=16)
        layout = FabricLayout(arch, 8, 8)
        return build_rr_graph(arch, layout), layout

    def test_every_active_tile_has_pins(self, graph):
        g, layout = graph
        for tile in layout.tiles():
            if tile.type == TileType.EMPTY:
                continue
            key = (tile.x, tile.y)
            assert key in g.source_of
            assert key in g.sink_of

    def test_source_reaches_wires(self, graph):
        g, layout = graph
        source = g.source_of[(4, 4)]
        opin_edges = g.out_edges[source]
        assert len(opin_edges) == 1
        assert opin_edges[0].resource == "output_mux"
        opin = opin_edges[0].dst
        wire_edges = g.out_edges[opin]
        assert wire_edges
        assert all(e.resource == "sb_mux" for e in wire_edges)
        assert all(
            g.nodes[e.dst].type in (RRNodeType.CHANX, RRNodeType.CHANY)
            for e in wire_edges
        )

    def test_wires_have_switchblock_fanout(self, graph):
        g, _ = graph
        wires = [n for n in g.nodes if n.type == RRNodeType.CHANX]
        assert wires
        sample = wires[len(wires) // 2]
        targets = [e for e in g.out_edges[sample.id] if e.resource == "sb_mux"]
        assert targets

    def test_ipin_to_sink_is_local_mux(self, graph):
        g, _ = graph
        ipin = g.ipin_of[(3, 3)]
        edges = g.out_edges[ipin]
        assert len(edges) == 1
        assert edges[0].resource == "local_mux"
        assert g.nodes[edges[0].dst].type == RRNodeType.SINK

    def test_wire_capacity_is_one(self, graph):
        g, _ = graph
        for node in g.nodes:
            if node.type in (RRNodeType.CHANX, RRNodeType.CHANY):
                assert node.capacity == 1

    def test_wire_span_length(self, graph):
        g, layout = graph
        for node in g.nodes:
            if node.type == RRNodeType.CHANX:
                x0, _, x1, _ = node.span
                assert 0 <= x1 - x0 <= 3  # length-4 segments
