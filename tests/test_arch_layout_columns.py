"""Tests for the hard-block column structure and grid auto-sizing."""

import pytest

from repro.arch.layout import FabricLayout, TileType
from repro.arch.params import ArchParams


class TestColumnPattern:
    def test_bram_columns_periodic(self):
        arch = ArchParams()
        layout = FabricLayout(arch, 20, 20)
        bram_cols = sorted({x for x, _ in layout.locations_of(TileType.BRAM)})
        assert bram_cols
        for col in bram_cols:
            assert col % arch.bram_column_period == arch.bram_column_period // 2

    def test_columns_full_height(self):
        layout = FabricLayout(ArchParams(), 16, 16)
        bram_cols = {x for x, _ in layout.locations_of(TileType.BRAM)}
        for col in bram_cols:
            rows = [y for x, y in layout.locations_of(TileType.BRAM) if x == col]
            assert len(rows) == layout.height - 2  # interior rows only

    def test_disabling_columns(self):
        arch = ArchParams().with_changes(bram_column_period=0, dsp_column_period=0)
        layout = FabricLayout(arch, 10, 10)
        assert not layout.locations_of(TileType.BRAM)
        assert not layout.locations_of(TileType.DSP)
        # Every interior tile is then a CLB.
        assert layout.capacity_of(TileType.CLB) == 8 * 8

    def test_clb_majority(self):
        layout = FabricLayout(ArchParams(), 14, 14)
        interior = (layout.width - 2) * (layout.height - 2)
        assert layout.capacity_of(TileType.CLB) > interior / 2


class TestAutoSizing:
    def test_growth_driven_by_hard_blocks(self):
        arch = ArchParams()
        few = FabricLayout.for_netlist(arch, n_clb=4, n_bram=1, n_dsp=0, n_io=8)
        many = FabricLayout.for_netlist(arch, n_clb=4, n_bram=30, n_dsp=0, n_io=8)
        assert many.width > few.width

    def test_io_capacity_drives_perimeter(self):
        arch = ArchParams()
        layout = FabricLayout.for_netlist(arch, n_clb=4, n_bram=0, n_dsp=0,
                                          n_io=300)
        assert layout.capacity_of(TileType.IO) >= 300

    def test_utilization_headroom(self):
        arch = ArchParams()
        layout = FabricLayout.for_netlist(
            arch, n_clb=50, n_bram=0, n_dsp=0, n_io=10, target_utilization=0.5
        )
        assert layout.capacity_of(TileType.CLB) >= 100

    def test_rejects_bad_utilization(self):
        with pytest.raises(ValueError):
            FabricLayout.for_netlist(
                ArchParams(), 5, 0, 0, 5, target_utilization=0.0
            )
