"""Tests for BLIF-style netlist serialization."""

import io

import pytest

from repro.netlists.blif import BlifError, read_blif, write_blif
from repro.netlists.generator import NetlistSpec, generate_netlist
from repro.netlists.netlist import BlockType


@pytest.fixture(scope="module")
def netlist():
    return generate_netlist(
        NetlistSpec("blif_probe", n_luts=18, n_brams=1, n_dsps=1, depth=4,
                    seed=55)
    )


class TestRoundTrip:
    def test_structure_preserved(self, netlist):
        buffer = io.StringIO()
        write_blif(netlist, buffer)
        buffer.seek(0)
        loaded = read_blif(buffer)
        original = netlist.stats()
        restored = loaded.stats()
        for key in ("luts", "ffs", "brams", "dsps", "inputs"):
            assert restored[key] == original[key], key

    def test_connectivity_preserved(self, netlist):
        buffer = io.StringIO()
        write_blif(netlist, buffer)
        buffer.seek(0)
        loaded = read_blif(buffer)

        def fanin_profile(nl):
            return sorted(
                (block.type.value, len(block.input_nets))
                for block in nl.blocks
                if block.type in (BlockType.LUT, BlockType.FF)
            )

        assert fanin_profile(loaded) == fanin_profile(netlist)

    def test_file_round_trip(self, netlist, tmp_path):
        path = tmp_path / "design.blif"
        write_blif(netlist, path)
        loaded = read_blif(path)
        assert loaded.name == "blif_probe"
        assert loaded.count(BlockType.LUT) == netlist.count(BlockType.LUT)

    def test_loaded_netlist_flows(self, netlist, arch):
        from repro.cad.flow import run_flow

        buffer = io.StringIO()
        write_blif(netlist, buffer)
        buffer.seek(0)
        loaded = read_blif(buffer)
        loaded.name = "blif_probe_reloaded"
        flow = run_flow(loaded, arch, use_cache=False)
        assert flow.routing.overused_nodes == 0


class TestParser:
    def test_minimal_model(self):
        text = """
        .model tiny
        .inputs a b
        .outputs y
        .names a b y
        11 1
        .end
        """
        nl = read_blif(io.StringIO(text))
        assert nl.count(BlockType.LUT) == 1
        assert nl.count(BlockType.INPUT) == 2

    def test_latch(self):
        text = """
        .model reg
        .inputs d
        .outputs q
        .latch d q re clk 0
        .end
        """
        nl = read_blif(io.StringIO(text))
        assert nl.count(BlockType.FF) == 1

    def test_comments_and_continuations(self):
        text = (
            ".model c  # a comment\n"
            ".inputs \\\na b\n"
            ".outputs y\n"
            ".names a b y\n"
            "11 1\n"
            ".end\n"
        )
        nl = read_blif(io.StringIO(text))
        assert nl.count(BlockType.INPUT) == 2

    def test_multiple_drivers_rejected(self):
        text = """
        .model bad
        .inputs a
        .outputs y
        .names a y
        1 1
        .names a y
        1 1
        .end
        """
        with pytest.raises(BlifError, match="multiple drivers"):
            read_blif(io.StringIO(text))

    def test_undriven_net_rejected(self):
        text = """
        .model bad
        .inputs a
        .outputs y
        .names ghost y
        1 1
        .end
        """
        with pytest.raises(BlifError, match="never driven"):
            read_blif(io.StringIO(text))

    def test_unknown_directive_rejected(self):
        with pytest.raises(BlifError, match="unsupported directive"):
            read_blif(io.StringIO(".model x\n.gate nand2 a=b\n.end\n"))

    def test_unknown_subckt_rejected(self):
        with pytest.raises(BlifError, match="unsupported subcircuit"):
            read_blif(io.StringIO(".model x\n.subckt carry4 a=b\n.end\n"))
