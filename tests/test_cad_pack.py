"""Tests for BLE formation and cluster packing."""

import pytest

from repro.arch.layout import TileType
from repro.cad.pack import pack_netlist
from repro.netlists.generator import NetlistSpec, generate_netlist
from repro.netlists.netlist import BlockType, Netlist


@pytest.fixture(scope="module")
def packed(tiny_netlist, arch):
    return pack_netlist(tiny_netlist, arch)


class TestPacking:
    def test_every_block_packed_once(self, packed):
        seen = set()
        for cluster in packed.clusters:
            for block_id in cluster.block_ids:
                assert block_id not in seen
                seen.add(block_id)
        assert len(seen) == packed.netlist.n_blocks

    def test_cluster_size_constraint(self, packed, arch):
        for cluster in packed.clusters_of_type(TileType.CLB):
            luts = [
                b for b in cluster.block_ids
                if packed.netlist.blocks[b].type == BlockType.LUT
            ]
            assert len(luts) <= arch.cluster_size

    def test_cluster_input_constraint(self, packed, arch):
        for cluster in packed.clusters_of_type(TileType.CLB):
            assert len(cluster.input_nets) <= arch.cluster_inputs

    def test_cluster_output_constraint(self, packed, arch):
        # Strict BLE fusion guarantees at most N outputs per cluster.
        for cluster in packed.clusters_of_type(TileType.CLB):
            assert len(cluster.output_nets) <= arch.cluster_size

    def test_hard_blocks_get_own_clusters(self, packed):
        for cluster in packed.clusters:
            if cluster.type in (TileType.BRAM, TileType.DSP):
                assert len(cluster.block_ids) == 1

    def test_io_pads_are_io_clusters(self, packed):
        pad_ids = {
            b.id
            for b in packed.netlist.blocks
            if b.type in (BlockType.INPUT, BlockType.OUTPUT)
        }
        io_blocks = {
            b
            for c in packed.clusters_of_type(TileType.IO)
            for b in c.block_ids
        }
        assert pad_ids == io_blocks

    def test_input_nets_are_really_external(self, packed):
        for cluster in packed.clusters:
            members = set(cluster.block_ids)
            for net_id in cluster.input_nets:
                assert packed.netlist.nets[net_id].driver not in members

    def test_counts_summary(self, packed):
        counts = packed.counts()
        assert counts["bram"] == 1
        assert counts["dsp"] == 1
        assert counts["clb"] >= 2


class TestBleFusion:
    def test_exclusive_lut_ff_pair_fused(self, arch):
        nl = Netlist("pair")
        pi = nl.add_block(BlockType.INPUT)
        lut = nl.add_block(BlockType.LUT)
        ff = nl.add_block(BlockType.FF)
        po = nl.add_block(BlockType.OUTPUT)
        nl.connect(nl.add_net(pi), lut)
        lut_out = nl.add_net(lut)
        nl.connect(lut_out, ff)
        ff_out = nl.add_net(ff)
        nl.connect(ff_out, po)
        packed = pack_netlist(nl, arch)
        clb = packed.clusters_of_type(TileType.CLB)[0]
        assert set(clb.block_ids) == {lut.id, ff.id}

    def test_shared_lut_output_not_fused_into_one_output(self, arch):
        # LUT feeds both an FF and another consumer: the cluster must expose
        # both signals, which strict fusion handles by not fusing.
        nl = Netlist("shared")
        pi = nl.add_block(BlockType.INPUT)
        lut = nl.add_block(BlockType.LUT)
        ff = nl.add_block(BlockType.FF)
        po1 = nl.add_block(BlockType.OUTPUT)
        po2 = nl.add_block(BlockType.OUTPUT)
        nl.connect(nl.add_net(pi), lut)
        lut_out = nl.add_net(lut)
        nl.connect(lut_out, ff)
        nl.connect(lut_out, po1)
        nl.connect(nl.add_net(ff), po2)
        packed = pack_netlist(nl, arch)
        packed.netlist.validate()
        for cluster in packed.clusters_of_type(TileType.CLB):
            assert len(cluster.output_nets) <= arch.cluster_size


class TestPackingScalesClusters:
    def test_cluster_count_near_lut_count_over_n(self, arch):
        nl = generate_netlist(NetlistSpec("mid", n_luts=95, depth=6, seed=5))
        packed = pack_netlist(nl, arch)
        n_clb = len(packed.clusters_of_type(TileType.CLB))
        n_luts = nl.count(BlockType.LUT)
        assert n_clb >= (n_luts + arch.cluster_size - 1) // arch.cluster_size
        # Greedy packing should not be catastrophically sparse either.
        assert n_clb <= 3 * ((n_luts // arch.cluster_size) + 1)
