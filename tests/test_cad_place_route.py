"""Tests for simulated-annealing placement and PathFinder routing."""

import pytest

from repro.arch.layout import FabricLayout, TileType
from repro.arch.rrgraph import RRNodeType, build_rr_graph
from repro.cad.pack import pack_netlist
from repro.cad.place import _net_hpwl, _placement_nets, place
from repro.cad.route import RoutingError, route
from repro.netlists.generator import NetlistSpec, generate_netlist


@pytest.fixture(scope="module")
def packed(tiny_netlist, arch):
    return pack_netlist(tiny_netlist, arch)


@pytest.fixture(scope="module")
def layout(packed, arch):
    counts = {t: 0 for t in TileType}
    for c in packed.clusters:
        counts[c.type] += 1
    return FabricLayout.for_netlist(
        arch, counts[TileType.CLB], counts[TileType.BRAM],
        counts[TileType.DSP], counts[TileType.IO],
    )


@pytest.fixture(scope="module")
def placement(packed, layout):
    return place(packed, layout, seed=3)


class TestPlacement:
    def test_valid(self, packed, placement):
        placement.validate(packed)

    def test_deterministic(self, packed, layout, placement):
        again = place(packed, layout, seed=3)
        assert again.location == placement.location

    def test_seed_matters(self, packed, layout, placement):
        other = place(packed, layout, seed=4)
        assert other.location != placement.location

    def test_types_respected(self, packed, placement, layout):
        for cluster in packed.clusters:
            x, y = placement.location[cluster.id]
            assert layout.tile(x, y).type == cluster.type

    def test_anneal_beats_random_start(self, packed, layout):
        import numpy as np

        rng_placement = place(packed, layout, seed=3, effort=0.0)
        annealed = place(packed, layout, seed=3, effort=1.0)
        nets = _placement_nets(packed)

        def cost(p):
            return sum(_net_hpwl(n, p.location) for n in nets)

        # effort=0 still runs a shortened anneal; compare against a pure
        # shuffle instead: rebuild initial placement via a different seed
        # and check the standard anneal is no worse than either.
        assert cost(annealed) <= cost(rng_placement) * 1.05

    def test_overfull_design_rejected(self, arch):
        nl = generate_netlist(NetlistSpec("big", n_luts=400, depth=6, seed=1))
        packed = pack_netlist(nl, arch)
        small = FabricLayout(arch, 5, 5)
        with pytest.raises(ValueError, match="not enough"):
            place(packed, small, seed=1)


class TestRouting:
    @pytest.fixture(scope="class")
    def routed(self, packed, placement, layout, arch):
        graph = build_rr_graph(
            arch.with_changes(routed_channel_tracks=40), layout
        )
        return route(packed, placement, graph), graph

    def test_no_overuse(self, routed):
        result, graph = routed
        occupancy = {}
        for net_route in result.routes.values():
            for node in net_route.all_nodes():
                occupancy[node] = occupancy.get(node, 0) + 1
        for node_id, occ in occupancy.items():
            assert occ <= graph.nodes[node_id].capacity

    def test_every_intertile_net_routed(self, routed, packed, placement):
        result, graph = routed
        for net in packed.netlist.nets:
            src = placement.location[packed.cluster_of_block[net.driver]]
            sink_tiles = {
                placement.location[packed.cluster_of_block[s]] for s in net.sinks
            } - {src}
            if sink_tiles:
                assert net.id in result.routes
                assert len(result.routes[net.id].sink_paths) == len(sink_tiles)

    def test_paths_are_connected_chains(self, routed, packed):
        result, graph = routed
        adjacency = {
            node.id: {e.dst for e in graph.out_edges[node.id]}
            for node in graph.nodes
        }
        for net_route in result.routes.values():
            for path in net_route.sink_paths.values():
                for a, b in zip(path, path[1:]):
                    assert b in adjacency[a], "path uses a non-existent edge"

    def test_paths_end_at_sinks(self, routed):
        result, graph = routed
        for net_route in result.routes.values():
            for sink_node, path in net_route.sink_paths.items():
                assert path[-1] == sink_node
                assert graph.nodes[sink_node].type == RRNodeType.SINK

    def test_congestion_failure_reports_width_hint(self, packed, placement, layout, arch):
        starved = build_rr_graph(
            arch.with_changes(routed_channel_tracks=2, fc_in=0.9, fc_out=0.9),
            layout,
        )
        # Either congestion never resolves or the starved graph is simply
        # disconnected; both must surface as a RoutingError.
        with pytest.raises(RoutingError):
            route(packed, placement, starved, max_iterations=6)
