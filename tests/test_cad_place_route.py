"""Tests for simulated-annealing placement and PathFinder routing."""

import json
from pathlib import Path

import pytest

from repro.arch.layout import FabricLayout, TileType
from repro.arch.rrgraph import RRNodeType, build_rr_graph
from repro.cad.criticality import criticality_weights
from repro.cad.pack import pack_netlist
from repro.cad.place import (
    Placement,
    _net_hpwl,
    _placement_nets,
    _shrunk_range_limit,
    place,
)
from repro.cad.route import RoutingError, route
from repro.netlists.generator import NetlistSpec, generate_netlist

GOLDEN_PLACEMENTS = Path(__file__).parent / "data" / "golden_placements.json"


@pytest.fixture(scope="module")
def packed(tiny_netlist, arch):
    return pack_netlist(tiny_netlist, arch)


@pytest.fixture(scope="module")
def layout(packed, arch):
    counts = {t: 0 for t in TileType}
    for c in packed.clusters:
        counts[c.type] += 1
    return FabricLayout.for_netlist(
        arch, counts[TileType.CLB], counts[TileType.BRAM],
        counts[TileType.DSP], counts[TileType.IO],
    )


@pytest.fixture(scope="module")
def placement(packed, layout):
    return place(packed, layout, seed=3)


class TestPlacement:
    def test_valid(self, packed, placement):
        placement.validate(packed)

    def test_deterministic(self, packed, layout, placement):
        again = place(packed, layout, seed=3)
        assert again.location == placement.location

    def test_seed_matters(self, packed, layout, placement):
        other = place(packed, layout, seed=4)
        assert other.location != placement.location

    def test_types_respected(self, packed, placement, layout):
        for cluster in packed.clusters:
            x, y = placement.location[cluster.id]
            assert layout.tile(x, y).type == cluster.type

    def test_anneal_beats_random_start(self, packed, layout):
        import numpy as np

        rng_placement = place(packed, layout, seed=3, effort=0.0)
        annealed = place(packed, layout, seed=3, effort=1.0)
        nets = _placement_nets(packed)

        def cost(p):
            return sum(_net_hpwl(n, p.location) for n in nets)

        # effort=0 still runs a shortened anneal; compare against a pure
        # shuffle instead: rebuild initial placement via a different seed
        # and check the standard anneal is no worse than either.
        assert cost(annealed) <= cost(rng_placement) * 1.05

    def test_overfull_design_rejected(self, arch):
        nl = generate_netlist(NetlistSpec("big", n_luts=400, depth=6, seed=1))
        packed = pack_netlist(nl, arch)
        small = FabricLayout(arch, 5, 5)
        with pytest.raises(ValueError, match="not enough"):
            place(packed, small, seed=1)

    def test_multi_occupant_tiles_respect_capacity(
        self, packed, placement, layout
    ):
        occupancy = {}
        for cluster_id, xy in placement.location.items():
            occupancy.setdefault(xy, []).append(cluster_id)
        # The tiny design has more IO clusters than IO tiles, so some
        # tiles genuinely host several clusters...
        assert any(len(ids) > 1 for ids in occupancy.values())
        # ...and the occupants index agrees with the locations and never
        # exceeds any tile's capacity.
        for xy, ids in occupancy.items():
            assert sorted(placement.occupants[xy]) == sorted(ids)
            assert len(ids) <= layout.tile(*xy).capacity

    def test_validate_rejects_over_capacity(self, packed, placement, layout):
        crowded = Placement(
            layout,
            dict(placement.location),
            {xy: list(ids) for xy, ids in placement.occupants.items()},
        )
        # Pile every cluster onto one already-occupied tile's roster.
        xy = next(iter(crowded.occupants))
        crowded.occupants[xy] = [c.id for c in packed.clusters]
        with pytest.raises(ValueError, match="over capacity"):
            crowded.validate(packed)


class TestRangeWindowSchedule:
    """The VPR move-window shrink: hold near 44 % acceptance."""

    def test_holds_at_the_target_acceptance(self):
        assert _shrunk_range_limit(10.0, 0.44, 20) == pytest.approx(10.0)

    def test_shrinks_when_everything_is_rejected(self):
        assert _shrunk_range_limit(10.0, 0.0, 20) == pytest.approx(5.6)

    def test_expands_when_everything_is_accepted(self):
        assert _shrunk_range_limit(10.0, 1.0, 20) == pytest.approx(15.6)

    def test_expansion_clamped_to_the_die(self):
        assert _shrunk_range_limit(19.0, 1.0, 20) == 20.0

    def test_never_shrinks_below_one_tile(self):
        limit = 10.0
        for _ in range(50):
            limit = _shrunk_range_limit(limit, 0.0, 20)
        assert limit == 1.0


class TestLegacyBitIdentity:
    """``thermal_weight=0`` must reproduce the pre-thermal placer exactly.

    The golden file was recorded from the wirelength-only placer before
    the thermal objective existed; every configuration in it (plain,
    low-effort, timing-driven) must still come out bit-identical, both
    by default and with an explicit ``thermal_weight=0.0``.
    """

    @pytest.fixture(scope="class")
    def golden(self):
        return json.loads(GOLDEN_PLACEMENTS.read_text(encoding="utf-8"))

    @pytest.fixture(scope="class")
    def golden_design(self, golden, arch):
        netlist = generate_netlist(NetlistSpec(**golden["netlist_spec"]))
        return netlist, pack_netlist(netlist, arch)

    def _locations(self, golden, name):
        return {
            int(cluster_id): tuple(xy)
            for cluster_id, xy in golden["placements"][name].items()
        }

    def test_layout_matches_recording(self, golden, layout):
        assert [layout.width, layout.height] == golden["layout"]

    @pytest.mark.parametrize("thermal_weight", [None, 0.0])
    def test_plain_seed(self, golden, golden_design, layout, thermal_weight):
        _netlist, packed = golden_design
        kwargs = {} if thermal_weight is None else {
            "thermal_weight": thermal_weight
        }
        result = place(packed, layout, seed=3, **kwargs)
        assert result.location == self._locations(golden, "seed3")
        assert result.thermal_stats is None

    def test_low_effort_seed(self, golden, golden_design, layout):
        _netlist, packed = golden_design
        result = place(packed, layout, seed=11, effort=0.5, thermal_weight=0.0)
        assert result.location == self._locations(golden, "seed11_effort0.5")

    def test_timing_driven_seed(self, golden, golden_design, layout):
        netlist, packed = golden_design
        result = place(
            packed, layout, seed=7,
            net_weights=criticality_weights(netlist),
            thermal_weight=0.0,
        )
        assert result.location == self._locations(golden, "seed7_timing")


class TestRouting:
    @pytest.fixture(scope="class")
    def routed(self, packed, placement, layout, arch):
        graph = build_rr_graph(
            arch.with_changes(routed_channel_tracks=40), layout
        )
        return route(packed, placement, graph), graph

    def test_no_overuse(self, routed):
        result, graph = routed
        occupancy = {}
        for net_route in result.routes.values():
            for node in net_route.all_nodes():
                occupancy[node] = occupancy.get(node, 0) + 1
        for node_id, occ in occupancy.items():
            assert occ <= graph.nodes[node_id].capacity

    def test_every_intertile_net_routed(self, routed, packed, placement):
        result, graph = routed
        for net in packed.netlist.nets:
            src = placement.location[packed.cluster_of_block[net.driver]]
            sink_tiles = {
                placement.location[packed.cluster_of_block[s]] for s in net.sinks
            } - {src}
            if sink_tiles:
                assert net.id in result.routes
                assert len(result.routes[net.id].sink_paths) == len(sink_tiles)

    def test_paths_are_connected_chains(self, routed, packed):
        result, graph = routed
        adjacency = {
            node.id: {e.dst for e in graph.out_edges[node.id]}
            for node in graph.nodes
        }
        for net_route in result.routes.values():
            for path in net_route.sink_paths.values():
                for a, b in zip(path, path[1:]):
                    assert b in adjacency[a], "path uses a non-existent edge"

    def test_paths_end_at_sinks(self, routed):
        result, graph = routed
        for net_route in result.routes.values():
            for sink_node, path in net_route.sink_paths.items():
                assert path[-1] == sink_node
                assert graph.nodes[sink_node].type == RRNodeType.SINK

    def test_congestion_failure_reports_width_hint(self, packed, placement, layout, arch):
        starved = build_rr_graph(
            arch.with_changes(routed_channel_tracks=2, fc_in=0.9, fc_out=0.9),
            layout,
        )
        # Either congestion never resolves or the starved graph is simply
        # disconnected; both must surface as a RoutingError.
        with pytest.raises(RoutingError):
            route(packed, placement, starved, max_iterations=6)
