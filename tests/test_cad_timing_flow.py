"""Tests for the temperature-aware STA and the end-to-end flow driver."""

import numpy as np
import pytest

from repro.cad.flow import run_flow
from repro.cad.timing import FF_CLK_TO_Q_S, FF_SETUP_S
from repro.netlists.netlist import BlockType


class TestTimingAnalyzer:
    def test_critical_path_positive(self, tiny_flow, fabric25, uniform_25):
        report = tiny_flow.timing.critical_path(fabric25, uniform_25)
        assert report.critical_path_s > FF_CLK_TO_Q_S + FF_SETUP_S
        assert report.frequency_hz == pytest.approx(1.0 / report.critical_path_s)

    def test_scalar_temperature_broadcasts(self, tiny_flow, fabric25, uniform_25):
        a = tiny_flow.timing.critical_path(fabric25, uniform_25)
        b = tiny_flow.timing.critical_path(fabric25, np.asarray(25.0))
        assert a.critical_path_s == pytest.approx(b.critical_path_s)

    def test_wrong_vector_length_rejected(self, tiny_flow, fabric25):
        with pytest.raises(ValueError, match="tiles"):
            tiny_flow.timing.critical_path(fabric25, np.full(3, 25.0))

    def test_hotter_is_slower(self, tiny_flow, fabric25, uniform_25):
        cold = tiny_flow.timing.critical_path(fabric25, uniform_25)
        hot = tiny_flow.timing.critical_path(fabric25, uniform_25 + 75.0)
        assert hot.critical_path_s > 1.2 * cold.critical_path_s

    def test_local_hotspot_only_matters_on_path(self, tiny_flow, fabric25, uniform_25):
        # Heating a tile *off* the critical path must not slow it more than
        # heating the whole die.
        base = tiny_flow.timing.critical_path(fabric25, uniform_25)
        hot_everywhere = tiny_flow.timing.critical_path(fabric25, uniform_25 + 50.0)
        one_tile = uniform_25.copy()
        one_tile[0] += 50.0
        hot_corner = tiny_flow.timing.critical_path(fabric25, one_tile)
        assert base.critical_path_s <= hot_corner.critical_path_s + 1e-15
        assert hot_corner.critical_path_s <= hot_everywhere.critical_path_s

    def test_critical_path_blocks_form_a_chain(self, tiny_flow, fabric25, uniform_25):
        report = tiny_flow.timing.critical_path(fabric25, uniform_25)
        netlist = tiny_flow.netlist
        assert len(report.critical_blocks) >= 2
        for prev, cur in zip(report.critical_blocks, report.critical_blocks[1:]):
            fanout = {
                sink
                for net_id in netlist.blocks[prev].output_nets
                for sink in netlist.nets[net_id].sinks
            }
            assert cur in fanout
        assert report.critical_blocks[-1] == report.critical_endpoint

    def test_startpoint_is_sequential_or_input(self, tiny_flow, fabric25, uniform_25):
        report = tiny_flow.timing.critical_path(fabric25, uniform_25)
        start = tiny_flow.netlist.blocks[report.critical_blocks[0]]
        assert start.type in (BlockType.INPUT, BlockType.FF, BlockType.BRAM)

    def test_resource_mix_sums_to_one(self, tiny_flow, fabric25, uniform_25):
        mix = tiny_flow.timing.critical_path_resource_mix(fabric25, uniform_25)
        assert sum(mix.values()) == pytest.approx(1.0)
        assert all(0.0 <= v <= 1.0 for v in mix.values())


class TestFlowDriver:
    def test_in_memory_cache(self, tiny_netlist, arch, tiny_flow):
        assert run_flow(tiny_netlist, arch, seed=11) is tiny_flow

    def test_layout_fits_design(self, tiny_flow):
        from repro.arch.layout import TileType

        packed = tiny_flow.packed
        layout = tiny_flow.layout
        for type_ in (TileType.CLB, TileType.BRAM, TileType.DSP):
            needed = len(packed.clusters_of_type(type_))
            assert layout.capacity_of(type_) >= needed

    def test_seed_changes_placement(self, tiny_netlist, arch, tiny_flow):
        other = run_flow(tiny_netlist, arch, seed=12)
        assert other.placement.location != tiny_flow.placement.location

    def test_n_tiles_property(self, tiny_flow):
        assert tiny_flow.n_tiles == tiny_flow.layout.width * tiny_flow.layout.height
