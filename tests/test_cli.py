"""Tests for the ``python -m repro`` command-line interface.

CLI contract: every subcommand supports ``--json`` (one machine-readable
object on stdout) and failures exit non-zero with a one-line diagnostic,
never a raw traceback.
"""

import json

import pytest

from repro.__main__ import main


@pytest.fixture()
def cache_dir(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    return tmp_path


class TestCli:
    def test_characterize(self, capsys):
        assert main(["characterize", "--corner", "25"]) == 0
        out = capsys.readouterr().out
        assert "sb_mux" in out and "bram" in out

    def test_corners(self, capsys):
        assert main(["corners"]) == 0
        out = capsys.readouterr().out
        assert "D0" in out and "D100" in out

    def test_grades(self, capsys):
        assert main(["grades", "--count", "2"]) == 0
        out = capsys.readouterr().out
        assert "grade corner" in out

    def test_guardband(self, capsys):
        assert main(["guardband", "stereovision3", "--ambient", "25"]) == 0
        out = capsys.readouterr().out
        assert "thermal-aware" in out and "MHz" in out

    def test_unknown_benchmark_rejected(self):
        with pytest.raises(SystemExit):
            main(["guardband", "nonexistent"])

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])


class TestJsonMode:
    def test_characterize_json(self, capsys):
        assert main(["characterize", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        names = {r["resource"] for r in payload["resources"]}
        assert "sb_mux" in names and "bram" in names

    def test_guardband_json(self, capsys):
        assert main(["guardband", "stereovision3", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["benchmark"] == "stereovision3"
        assert payload["frequency_hz"] > payload["worst_case_hz"] > 0
        assert payload["gain"] > 0

    def test_corners_json(self, capsys):
        assert main(["corners", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert len(payload["winners"]) == 11

    def test_grades_json(self, capsys):
        assert main(["grades", "--count", "2", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert len(payload["bands"]) == 2
        assert payload["average_delay_s"] > 0


class TestSweepCommand:
    def test_sweep_text(self, cache_dir, capsys):
        code = main(
            ["sweep", "--benchmarks", "mkPktMerge,stereovision3",
             "--ambients", "25,70"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "mkPktMerge" in out and "stereovision3" in out
        assert "guardbanding gain" not in out  # two ambients: no chart

    def test_sweep_json_with_jsonl(self, cache_dir, tmp_path, capsys):
        jsonl = tmp_path / "cells.jsonl"
        code = main(
            ["sweep", "--benchmarks", "mkPktMerge", "--ambients", "25",
             "--workers", "2", "--json", "--jsonl", str(jsonl)]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["n_jobs"] == payload["n_ok"] == 1
        assert payload["results"][0]["benchmark"] == "mkPktMerge"
        lines = jsonl.read_text().splitlines()
        assert len(lines) == 1 and json.loads(lines[0])["type"] == "result"

    def test_sweep_unknown_benchmark_exits_1(self, capsys):
        code = main(["sweep", "--benchmarks", "nonexistent", "--json"])
        assert code == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["error"] == "ValueError"
        assert "unknown VTR benchmark" in payload["message"]

    def test_sweep_bad_ambients_diagnostic(self):
        with pytest.raises(SystemExit, match="--ambients"):
            main(["sweep", "--benchmarks", "sha", "--ambients", "hot"])


class TestServiceCommands:
    """serve/submit/status share the CLI's exit-code and --json contract."""

    def _spec_file(self, tmp_path, mutate=None):
        from repro.runner.spec import ExperimentSpec
        from repro.service.wire import to_wire

        doc = to_wire(ExperimentSpec(benchmarks=("sha",)))
        if mutate is not None:
            mutate(doc)
        path = tmp_path / "spec.json"
        path.write_text(json.dumps(doc), encoding="utf-8")
        return str(path)

    def test_serve_requires_store(self):
        with pytest.raises(SystemExit):
            main(["serve"])

    def test_submit_missing_spec_file_exits_1(self, tmp_path, capsys):
        code = main(["submit", str(tmp_path / "absent.json"),
                     "--url", "http://127.0.0.1:1", "--json"])
        assert code == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["error"] == "FileNotFoundError"

    def test_submit_bad_wire_version_exits_1(self, tmp_path, capsys):
        def bump(doc):
            doc["wire_version"] = 999

        code = main(["submit", self._spec_file(tmp_path, bump),
                     "--url", "http://127.0.0.1:1", "--json"])
        assert code == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["error"] == "WireError"
        assert "999" in payload["message"]

    def test_submit_non_spec_envelope_exits_1(self, tmp_path, capsys):
        from repro.arch.params import ArchParams
        from repro.service.wire import to_wire

        path = tmp_path / "arch.json"
        path.write_text(json.dumps(to_wire(ArchParams())), encoding="utf-8")
        code = main(["submit", str(path),
                     "--url", "http://127.0.0.1:1", "--json"])
        assert code == 1
        payload = json.loads(capsys.readouterr().out)
        assert "ExperimentSpec" in payload["message"]

    def test_submit_unreachable_server_exits_1(self, tmp_path, capsys):
        code = main(["submit", self._spec_file(tmp_path),
                     "--url", "http://127.0.0.1:1", "--json"])
        assert code == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["error"] == "ServiceError"
        assert "cannot reach" in payload["message"]

    def test_status_unreachable_server_exits_1(self, capsys):
        code = main(["status", "job-0001",
                     "--url", "http://127.0.0.1:1", "--json"])
        assert code == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["error"] == "ServiceError"

    def test_help_lists_service_subcommands(self, capsys):
        with pytest.raises(SystemExit):
            main(["--help"])
        out = capsys.readouterr().out
        for name in ("serve", "submit", "status"):
            assert name in out
