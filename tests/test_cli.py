"""Tests for the ``python -m repro`` command-line interface."""

import pytest

from repro.__main__ import main


class TestCli:
    def test_characterize(self, capsys):
        assert main(["characterize", "--corner", "25"]) == 0
        out = capsys.readouterr().out
        assert "sb_mux" in out and "bram" in out

    def test_corners(self, capsys):
        assert main(["corners"]) == 0
        out = capsys.readouterr().out
        assert "D0" in out and "D100" in out

    def test_grades(self, capsys):
        assert main(["grades", "--count", "2"]) == 0
        out = capsys.readouterr().out
        assert "grade corner" in out

    def test_guardband(self, capsys):
        assert main(["guardband", "stereovision3", "--ambient", "25"]) == 0
        out = capsys.readouterr().out
        assert "thermal-aware" in out and "MHz" in out

    def test_unknown_benchmark_rejected(self):
        with pytest.raises(SystemExit):
            main(["guardband", "nonexistent"])

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])
