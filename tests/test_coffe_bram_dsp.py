"""Tests for the BRAM and DSP hard-block models."""

import pytest

from repro.coffe.bram import BANK_CHOICES, BramModel
from repro.coffe.dsp import DspModel
from repro.technology import celsius_to_kelvin

T0 = celsius_to_kelvin(0.0)
T25 = celsius_to_kelvin(25.0)
T100 = celsius_to_kelvin(100.0)


@pytest.fixture(scope="module")
def bram25() -> BramModel:
    return BramModel("bram", 0.95, design_corner_kelvin=T25, mc_cells=400)


@pytest.fixture(scope="module")
def dsp() -> DspModel:
    return DspModel("dsp", 0.8)


class TestBramStructure:
    def test_rejects_bad_geometry(self):
        with pytest.raises(ValueError):
            BramModel("b", 0.95, T25, n_rows=1, n_cols=0)

    def test_rejects_bad_banks(self):
        with pytest.raises(ValueError):
            BramModel("b", 0.95, T25, n_banks=3)

    def test_variants_are_bank_options(self, bram25):
        banks = sorted(v.n_banks for v in bram25.variants())
        assert banks == sorted(BANK_CHOICES)

    def test_weak_factor_above_one(self, bram25):
        assert bram25.weak_factor > 1.5


class TestBramDelay:
    def test_positive_and_monotonic_in_temperature(self, bram25):
        sizes = bram25.default_sizes
        delays = [bram25.delay_seconds(sizes, celsius_to_kelvin(t))
                  for t in (0.0, 25.0, 50.0, 75.0, 100.0)]
        assert delays[0] > 0.0
        assert all(a < b for a, b in zip(delays, delays[1:]))

    def test_design_delay_is_pessimistic(self, bram25):
        # Design evaluation (weakest Monte-Carlo cell) must never be faster
        # than the nominal behaviour.
        sizes = bram25.default_sizes
        assert bram25.design_delay_seconds(sizes, T100) > bram25.delay_seconds(
            sizes, T100
        )

    def test_banking_cuts_hot_development_time(self, bram25):
        sizes = bram25.default_sizes
        banked = [v for v in bram25.variants() if v.n_banks == 4][0]
        assert banked.develop_time_seconds(
            sizes, T100, weak=True
        ) < bram25.develop_time_seconds(sizes, T100, weak=True)

    def test_banking_costs_a_global_stage(self, bram25):
        # The banked array pays a global-bitline stage that the flat array
        # does not have: its non-bitline delay component is strictly larger.
        sizes = bram25.default_sizes
        banked = [v for v in bram25.variants() if v.n_banks == 4][0]
        flat_rest = bram25.delay_seconds(sizes, T0) - bram25.develop_time_seconds(
            sizes, T0
        )
        banked_rest = banked.delay_seconds(sizes, T0) - banked.develop_time_seconds(
            sizes, T0
        )
        assert banked_rest > flat_rest

    def test_bigger_sense_amp_needs_less_swing(self, bram25):
        assert bram25._swing_volts(16.0) < bram25._swing_volts(1.0)


class TestBramPower:
    def test_leakage_grows_with_temperature(self, bram25):
        sizes = bram25.default_sizes
        assert bram25.leakage_watts(sizes, T100) > bram25.leakage_watts(sizes, T0)

    def test_leakage_flatter_than_soft_fabric(self, bram25):
        # Paper Table II: BRAM leakage is almost flat (6.2 + (T/70)^2).
        sizes = bram25.default_sizes
        # (Paper's fit gives 1.33x over the range; ours lands under 3.5x vs
        # the ~4x of the soft fabric — see EXPERIMENTS.md for the deviation.)
        ratio = bram25.leakage_watts(sizes, T100) / bram25.leakage_watts(sizes, T0)
        assert ratio < 3.5

    def test_area_dominated_by_cell_array(self, bram25):
        sizes = bram25.default_sizes
        fewer_rows = BramModel("b", 0.95, T25, n_rows=256, mc_cells=100)
        assert bram25.area_um2(sizes) > 3.0 * fewer_rows.area_um2(sizes)

    def test_switched_cap_positive(self, bram25):
        assert bram25.switched_cap_farads(bram25.default_sizes) > 0.0


class TestDsp:
    def test_delay_temperature_rise_near_paper(self, dsp):
        # Paper Table II: DSP delay rises ~80 % over 0..100 C.
        sizes = dsp.default_sizes
        rise = dsp.delay_seconds(sizes, T100) / dsp.delay_seconds(sizes, T0) - 1.0
        assert 0.6 < rise < 1.0

    def test_bigger_gates_faster(self, dsp):
        slow = dsp.delay_seconds({"w_gate": 1.0, "w_drive": 6.0}, T25)
        fast = dsp.delay_seconds({"w_gate": 3.0, "w_drive": 6.0}, T25)
        assert fast < slow

    def test_area_scales_with_gate_width(self, dsp):
        a1 = dsp.area_um2({"w_gate": 1.0, "w_drive": 6.0})
        a2 = dsp.area_um2({"w_gate": 2.0, "w_drive": 6.0})
        assert a2 > a1

    def test_leakage_positive_and_rising(self, dsp):
        sizes = dsp.default_sizes
        assert 0.0 < dsp.leakage_watts(sizes, T0) < dsp.leakage_watts(sizes, T100)

    def test_single_variant(self, dsp):
        assert dsp.variants() == (dsp,)
