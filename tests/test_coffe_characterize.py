"""Tests for the characterization/calibration layer itself."""

import numpy as np
import pytest

from repro.arch.params import ArchParams
from repro.coffe.characterize import (
    AREA_BUDGET_HEADROOM,
    REFERENCE_CORNER_CELSIUS,
    T_GRID_CELSIUS,
    build_circuits,
    calibration_scales,
    characterize_resource,
    corner_sizing,
    reference_sizings,
)
from repro.technology.temperature import celsius_to_kelvin


class TestBuildCircuits:
    def test_all_eight_resources(self, arch):
        circuits = build_circuits(arch, 25.0)
        assert len(circuits) == 8
        assert {"bram", "dsp"} <= set(circuits)

    def test_bram_carries_design_corner(self, arch):
        hot = build_circuits(arch, 100.0)["bram"]
        assert hot.design_corner_kelvin == pytest.approx(celsius_to_kelvin(100.0))


class TestReferenceSizings:
    def test_cached_per_arch(self, arch):
        assert reference_sizings(arch) is reference_sizings(arch)

    def test_covers_all_resources(self, arch):
        refs = reference_sizings(arch)
        assert set(refs) == set(build_circuits(arch, 25.0))

    def test_reference_corner_is_25(self, arch):
        for ref in reference_sizings(arch).values():
            assert ref.corner_kelvin == pytest.approx(
                celsius_to_kelvin(REFERENCE_CORNER_CELSIUS)
            )


class TestCornerSizing:
    def test_respects_headroom_budget(self, arch):
        refs = reference_sizings(arch)
        for name, circuit in build_circuits(arch, 70.0).items():
            variant, sizing = corner_sizing(arch, circuit, 70.0)
            budget = refs[name].area_um2 * AREA_BUDGET_HEADROOM
            assert sizing.area_um2 <= budget * (1.0 + 1e-9), name

    def test_hot_corner_prefers_tgate_muxes(self, arch):
        cold_variant, _ = corner_sizing(
            arch, build_circuits(arch, 0.0)["lut"], 0.0
        )
        hot_variant, _ = corner_sizing(
            arch, build_circuits(arch, 100.0)["lut"], 100.0
        )
        assert cold_variant.pass_style == "nmos"
        assert hot_variant.pass_style == "tgate"

    def test_cold_corner_keeps_flat_bram(self, arch):
        cold_variant, _ = corner_sizing(
            arch, build_circuits(arch, 0.0)["bram"], 0.0
        )
        hot_variant, _ = corner_sizing(
            arch, build_circuits(arch, 100.0)["bram"], 100.0
        )
        assert cold_variant.n_banks == 1
        assert hot_variant.n_banks > 1


class TestCharacterizeResource:
    def test_grid_is_one_degree_steps(self):
        assert T_GRID_CELSIUS[0] == 0.0
        assert T_GRID_CELSIUS[-1] == 100.0
        assert np.all(np.diff(T_GRID_CELSIUS) == 1.0)

    def test_fit_round_trips(self, arch):
        circuit = build_circuits(arch, 25.0)["sb_mux"]
        variant, sizing = corner_sizing(arch, circuit, 25.0)
        char = characterize_resource(variant, 25.0, sizing)
        intercept, slope = char.delay_fit()
        mid = intercept + slope * 50.0
        assert mid == pytest.approx(float(char.delay_at(50.0)), rel=0.02)

    def test_leak_fit_positive(self, arch):
        circuit = build_circuits(arch, 25.0)["lut"]
        variant, sizing = corner_sizing(arch, circuit, 25.0)
        char = characterize_resource(variant, 25.0, sizing)
        c, k = char.leakage_fit()
        assert c > 0.0 and k > 0.0


class TestCalibration:
    def test_scales_cover_everything(self, arch):
        scales = calibration_scales(arch)
        for mapping in (scales.delay, scales.area, scales.leakage, scales.pdyn):
            assert set(mapping) == set(build_circuits(arch, 25.0))

    def test_scales_positive(self, arch):
        scales = calibration_scales(arch)
        for mapping in (scales.delay, scales.area, scales.leakage, scales.pdyn):
            assert all(v > 0.0 for v in mapping.values())

    def test_scales_cached(self, arch):
        assert calibration_scales(arch) is calibration_scales(arch)

    def test_different_arch_different_scales(self):
        small = ArchParams().with_changes(lut_size=4)
        default = ArchParams()
        assert calibration_scales(small).delay["lut"] != calibration_scales(
            default
        ).delay["lut"]
