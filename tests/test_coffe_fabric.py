"""Tests for fabric characterization and Table II calibration."""

import numpy as np
import pytest

from repro.arch.params import ArchParams
from repro.coffe.characterize import (
    RESOURCE_NAMES,
    TABLE2,
    characterize_fabric,
)
from repro.coffe.fabric import CP_WEIGHTS, Fabric, build_fabric


class TestTable2Calibration:
    """The 25 C-corner fabric must reproduce paper Table II at 25 C."""

    def test_delay_anchored_at_25c(self, fabric25):
        for name, row in TABLE2.items():
            measured_ps = float(fabric25.delay_s(name, 25.0)) * 1e12
            assert measured_ps == pytest.approx(row.delay_ps(25.0), rel=1e-3), name

    def test_leakage_anchored_at_25c(self, fabric25):
        for name, row in TABLE2.items():
            measured_uw = float(fabric25.leakage_w(name, 25.0)) * 1e6
            assert measured_uw == pytest.approx(row.plkg_fit(25.0), rel=1e-3), name

    def test_area_matches_table2(self, fabric25):
        for name, row in TABLE2.items():
            assert fabric25.area_um2(name) == pytest.approx(
                row.area_um2, rel=1e-6
            ), name

    def test_dynamic_power_matches_table2(self, fabric25):
        for name, row in TABLE2.items():
            measured_uw = fabric25.dynamic_power_w(name, 100e6, 1.0) * 1e6
            assert measured_uw == pytest.approx(row.pdyn_uw, rel=1e-6), name

    @pytest.mark.parametrize("name", list(TABLE2))
    def test_delay_slopes_near_published(self, fabric25, name):
        # The temperature *shape* is a genuine model output; it should land
        # near the published linear fits (BRAM is the known outlier, see
        # EXPERIMENTS.md).
        row = TABLE2[name]
        measured = float(
            fabric25.delay_s(name, 100.0) / fabric25.delay_s(name, 0.0)
        )
        published = row.delay_ps(100.0) / row.delay_ps(0.0)
        tolerance = 0.25 if name == "bram" else 0.08
        assert measured == pytest.approx(published, rel=tolerance)


class TestFabricQueries:
    def test_unknown_resource_raises(self, fabric25):
        with pytest.raises(KeyError, match="unknown resource"):
            fabric25.delay_s("carry_chain", 25.0)

    def test_vectorized_delay(self, fabric25):
        temps = np.array([0.0, 50.0, 100.0])
        delays = fabric25.delay_s("lut", temps)
        assert delays.shape == (3,)
        assert delays[0] < delays[1] < delays[2]

    def test_temperature_clamped_to_range(self, fabric25):
        assert float(fabric25.delay_s("lut", -40.0)) == pytest.approx(
            float(fabric25.delay_s("lut", 0.0))
        )
        assert float(fabric25.delay_s("lut", 140.0)) == pytest.approx(
            float(fabric25.delay_s("lut", 100.0))
        )

    def test_dynamic_power_scales_linearly(self, fabric25):
        base = fabric25.dynamic_power_w("sb_mux", 100e6, 1.0)
        assert fabric25.dynamic_power_w("sb_mux", 200e6, 1.0) == pytest.approx(
            2 * base
        )
        assert fabric25.dynamic_power_w("sb_mux", 100e6, 0.25) == pytest.approx(
            base / 4
        )

    def test_dynamic_power_rejects_negative(self, fabric25):
        with pytest.raises(ValueError):
            fabric25.dynamic_power_w("sb_mux", -1.0, 1.0)

    def test_cp_weights_normalized(self):
        assert sum(CP_WEIGHTS.values()) == pytest.approx(1.0)

    def test_cp_delay_within_component_envelope(self, fabric25):
        cp = float(fabric25.cp_delay_s(25.0))
        parts = [float(fabric25.delay_s(r, 25.0)) for r in CP_WEIGHTS]
        assert min(parts) < cp < max(parts)

    def test_delay_increase_fraction_fig1(self, fabric25):
        # Paper Fig. 1 magnitudes at 100 C: CP ~47 %, DSP up to ~84 %.
        cp_rise = float(fabric25.delay_increase_fraction("cp", 100.0))
        dsp_rise = float(fabric25.delay_increase_fraction("dsp", 100.0))
        bram_rise = float(fabric25.delay_increase_fraction("bram", 100.0))
        assert 0.40 < cp_rise < 0.60
        assert 0.70 < dsp_rise < 0.90
        assert cp_rise < bram_rise
        assert cp_rise < dsp_rise


class TestBuildFabric:
    def test_rejects_out_of_range_corner(self, arch):
        with pytest.raises(ValueError, match="corner"):
            build_fabric(140.0, arch)

    def test_caching_returns_same_object(self, arch, fabric25):
        assert build_fabric(25.0, arch) is fabric25

    def test_label(self, fabric70):
        assert fabric70.label == "D70"

    def test_all_resources_present(self, fabric25):
        assert set(fabric25.resources) == set(RESOURCE_NAMES)

    def test_missing_resource_rejected(self, arch, fabric25):
        partial = {k: v for k, v in fabric25.resources.items() if k != "lut"}
        with pytest.raises(ValueError, match="missing resources"):
            Fabric(25.0, arch, partial)

    def test_published_table2_constructor(self, arch):
        published = Fabric.from_published_table2(arch)
        for name, row in TABLE2.items():
            assert float(published.delay_s(name, 60.0)) * 1e12 == pytest.approx(
                row.delay_ps(60.0), rel=1e-6
            )

    def test_uncalibrated_characterization_runs(self, arch):
        raw = characterize_fabric(arch, 25.0, calibrated=False)
        assert set(raw) == set(RESOURCE_NAMES)
        for char in raw.values():
            assert np.all(char.delay_s > 0.0)


class TestCornerBehaviour:
    """Paper Figs. 2-3: corner-optimized fabrics cross."""

    def test_each_corner_fastest_at_own_corner(self, arch):
        d0 = build_fabric(0.0, arch)
        d100 = build_fabric(100.0, arch)
        assert float(d0.cp_delay_s(0.0)) <= float(d100.cp_delay_s(0.0))
        assert float(d100.cp_delay_s(100.0)) <= float(d0.cp_delay_s(100.0))

    def test_cp_crossover_magnitudes(self, arch):
        # Paper Fig. 3: D0 is ~6.3 % faster at 0 C, D100 ~9.0 % at 100 C.
        d0 = build_fabric(0.0, arch)
        d100 = build_fabric(100.0, arch)
        at0 = float(d100.cp_delay_s(0.0) / d0.cp_delay_s(0.0))
        at100 = float(d0.cp_delay_s(100.0) / d100.cp_delay_s(100.0))
        assert 1.02 < at0 < 1.15
        assert 1.02 < at100 < 1.15

    def test_bram_strongest_corner_effect(self, arch):
        d0 = build_fabric(0.0, arch)
        d100 = build_fabric(100.0, arch)
        bram_at0 = float(d100.delay_s("bram", 0.0) / d0.delay_s("bram", 0.0))
        dsp_at0 = float(d100.delay_s("dsp", 0.0) / d0.delay_s("dsp", 0.0))
        assert bram_at0 > dsp_at0
