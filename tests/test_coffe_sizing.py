"""Tests for reference and budget-constrained transistor sizing."""

import pytest

from repro.arch.params import ArchParams
from repro.coffe.sizing import (
    MIN_WIDTH,
    SizingResult,
    size_subcircuit,
    size_subcircuit_budgeted,
)
from repro.coffe.subcircuits import soft_fabric_circuits
from repro.technology import celsius_to_kelvin

T0 = celsius_to_kelvin(0.0)
T25 = celsius_to_kelvin(25.0)
T100 = celsius_to_kelvin(100.0)


@pytest.fixture(scope="module")
def sb_mux():
    return soft_fabric_circuits(ArchParams())["sb_mux"]


@pytest.fixture(scope="module")
def reference(sb_mux) -> SizingResult:
    return size_subcircuit(sb_mux, T25)


class TestReferenceSizing:
    def test_improves_on_defaults(self, sb_mux, reference):
        default_cost = sb_mux.delay_seconds(
            sb_mux.default_sizes, T25
        ) * sb_mux.area_um2(sb_mux.default_sizes)
        assert reference.cost < default_cost

    def test_deterministic(self, sb_mux, reference):
        again = size_subcircuit(sb_mux, T25)
        assert again.sizes == reference.sizes

    def test_respects_min_width(self, reference):
        assert all(w >= MIN_WIDTH for w in reference.sizes.values())

    def test_rejects_bad_temperature(self, sb_mux):
        with pytest.raises(ValueError):
            size_subcircuit(sb_mux, -10.0)

    def test_reports_consistent_fields(self, sb_mux, reference):
        assert reference.delay_seconds == pytest.approx(
            sb_mux.delay_seconds(reference.sizes, T25)
        )
        assert reference.area_um2 == pytest.approx(
            sb_mux.area_um2(reference.sizes)
        )


class TestBudgetedSizing:
    def test_never_exceeds_budget(self, sb_mux, reference):
        budget = reference.area_um2 * 1.3
        sized = size_subcircuit_budgeted(sb_mux, T25, budget)
        assert sized.area_um2 <= budget * (1.0 + 1e-9)

    def test_budget_binds(self, sb_mux, reference):
        # Minimum-delay sizing always wants more silicon, so the optimizer
        # should spend (nearly) the whole budget.
        budget = reference.area_um2 * 1.3
        sized = size_subcircuit_budgeted(sb_mux, T25, budget)
        assert sized.area_um2 > 0.95 * budget

    def test_more_budget_never_slower(self, sb_mux, reference):
        lean = size_subcircuit_budgeted(sb_mux, T25, reference.area_um2 * 1.1)
        rich = size_subcircuit_budgeted(sb_mux, T25, reference.area_um2 * 1.6)
        assert rich.delay_seconds <= lean.delay_seconds * (1.0 + 1e-9)

    def test_corner_device_fastest_at_its_corner(self, sb_mux, reference):
        # The heart of paper Fig. 3: under equal silicon, the fabric sized
        # at a corner is the fastest fabric *at* that corner.
        budget = reference.area_um2 * 1.3
        cold = size_subcircuit_budgeted(sb_mux, T0, budget)
        hot = size_subcircuit_budgeted(sb_mux, T100, budget)
        assert sb_mux.delay_seconds(cold.sizes, T0) <= sb_mux.delay_seconds(
            hot.sizes, T0
        ) * (1.0 + 1e-9)
        assert sb_mux.delay_seconds(hot.sizes, T100) <= sb_mux.delay_seconds(
            cold.sizes, T100
        ) * (1.0 + 1e-9)

    def test_infeasible_budget_raises(self, sb_mux):
        with pytest.raises(ValueError, match="infeasible"):
            size_subcircuit_budgeted(sb_mux, T25, 0.01)

    def test_rejects_nonpositive_budget(self, sb_mux):
        with pytest.raises(ValueError):
            size_subcircuit_budgeted(sb_mux, T25, -1.0)
