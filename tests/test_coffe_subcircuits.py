"""Tests for the sizable subcircuit models (muxes, LUT)."""

import pytest

from repro.arch.params import ArchParams
from repro.coffe.subcircuits import (
    LutModel,
    MuxModel,
    NO_WIRE,
    TGATE_COLD_PENALTY,
    WireLoad,
    soft_fabric_circuits,
    tgate_resistance,
    transistor_area_um2,
)
from repro.spice.devices import pass_gate_resistance
from repro.coffe.subcircuits import PASS_ROUTING
from repro.technology import celsius_to_kelvin

T0 = celsius_to_kelvin(0.0)
T25 = celsius_to_kelvin(25.0)
T100 = celsius_to_kelvin(100.0)
VDD = 0.8


@pytest.fixture(scope="module")
def sb_mux() -> MuxModel:
    return soft_fabric_circuits(ArchParams())["sb_mux"]


@pytest.fixture(scope="module")
def lut() -> LutModel:
    return soft_fabric_circuits(ArchParams())["lut"]


class TestWireLoad:
    def test_copper_tempco(self):
        wire = WireLoad(100.0, 1e-15)
        assert wire.resistance_at(T100) > wire.resistance_at(T0)
        # ~39 % over the 100 K span.
        ratio = wire.resistance_at(T100) / wire.resistance_at(T0)
        assert ratio == pytest.approx(1.39 / 1.0, rel=0.15)

    def test_no_wire_is_free(self):
        assert NO_WIRE.resistance_at(T25) == 0.0


class TestMuxModel:
    def test_delay_positive_and_temperature_monotonic(self, sb_mux):
        sizes = sb_mux.default_sizes
        d0 = sb_mux.delay_seconds(sizes, T0)
        d100 = sb_mux.delay_seconds(sizes, T100)
        assert 0.0 < d0 < d100

    def test_bigger_buffer_faster_into_load(self, sb_mux):
        sizes = dict(sb_mux.default_sizes)
        base = sb_mux.delay_seconds(sizes, T25)
        sizes["w_inv2"] *= 2.0
        assert sb_mux.delay_seconds(sizes, T25) < base

    def test_area_grows_with_width(self, sb_mux):
        small = sb_mux.area_um2(sb_mux.default_sizes)
        big = sb_mux.area_um2({k: v * 2 for k, v in sb_mux.default_sizes.items()})
        assert big > small

    def test_leakage_grows_with_temperature(self, sb_mux):
        sizes = sb_mux.default_sizes
        assert sb_mux.leakage_watts(sizes, T100) > sb_mux.leakage_watts(sizes, T0)

    def test_more_inputs_more_area(self):
        small = MuxModel("m", 4, VDD)
        large = MuxModel("m", 32, VDD)
        assert large.area_um2(large.default_sizes) > small.area_um2(
            small.default_sizes
        )

    def test_missing_size_raises(self, sb_mux):
        with pytest.raises(KeyError, match="w_pass"):
            sb_mux.delay_seconds({"w_inv1": 1.0, "w_inv2": 1.0}, T25)

    def test_nonpositive_size_raises(self, sb_mux):
        sizes = dict(sb_mux.default_sizes)
        sizes["w_pass"] = 0.0
        with pytest.raises(ValueError):
            sb_mux.delay_seconds(sizes, T25)

    def test_rejects_tiny_mux(self):
        with pytest.raises(ValueError):
            MuxModel("m", 1, VDD)

    def test_rejects_unknown_style(self):
        with pytest.raises(ValueError, match="pass style"):
            MuxModel("m", 8, VDD, pass_style="ternary")

    def test_variants_cover_both_styles(self, sb_mux):
        styles = {v.pass_style for v in sb_mux.variants()}
        assert styles == {"nmos", "tgate"}

    def test_tgate_variant_costs_area(self, sb_mux):
        nmos, tgate = sb_mux.variants()
        sizes = sb_mux.default_sizes
        assert tgate.area_um2(sizes) > nmos.area_um2(sizes)

    def test_tgate_flatter_over_temperature(self, sb_mux):
        nmos, tgate = sb_mux.variants()
        sizes = sb_mux.default_sizes
        nmos_ratio = nmos.delay_seconds(sizes, T100) / nmos.delay_seconds(sizes, T0)
        tg_ratio = tgate.delay_seconds(sizes, T100) / tgate.delay_seconds(sizes, T0)
        assert tg_ratio < nmos_ratio

    def test_switched_cap_positive(self, sb_mux):
        assert sb_mux.switched_cap_farads(sb_mux.default_sizes) > 0.0


class TestTgateResistance:
    def test_cold_penalty(self):
        r_tg = tgate_resistance(VDD, 2.0, T0)
        r_n = pass_gate_resistance(PASS_ROUTING, VDD, 2.0, T0)
        assert r_tg == pytest.approx(TGATE_COLD_PENALTY * r_n, rel=1e-6)

    def test_crosses_below_nmos_when_hot(self):
        assert tgate_resistance(VDD, 2.0, T100) < pass_gate_resistance(
            PASS_ROUTING, VDD, 2.0, T100
        )


class TestLutModel:
    def test_most_temperature_sensitive_soft_resource(self, lut, sb_mux):
        # Paper Fig. 1: the LUT's pass tree is the steepest soft resource.
        lut_rise = lut.delay_seconds(lut.default_sizes, T100) / lut.delay_seconds(
            lut.default_sizes, T0
        )
        sb_rise = sb_mux.delay_seconds(
            sb_mux.default_sizes, T100
        ) / sb_mux.delay_seconds(sb_mux.default_sizes, T0)
        assert lut_rise > sb_rise

    def test_area_exponential_in_k(self):
        lut4 = LutModel("l4", 4, VDD)
        lut6 = LutModel("l6", 6, VDD)
        assert lut6.area_um2(lut6.default_sizes) > 3.0 * lut4.area_um2(
            lut4.default_sizes
        )

    def test_deeper_lut_slower(self):
        lut4 = LutModel("l4", 4, VDD)
        lut6 = LutModel("l6", 6, VDD)
        assert lut6.delay_seconds(lut6.default_sizes, T25) > lut4.delay_seconds(
            lut4.default_sizes, T25
        )

    def test_rejects_k1(self):
        with pytest.raises(ValueError):
            LutModel("l", 1, VDD)


class TestSoftFabricFactory:
    def test_all_six_resources(self):
        circuits = soft_fabric_circuits(ArchParams())
        assert set(circuits) == {
            "sb_mux", "cb_mux", "local_mux", "feedback_mux", "output_mux", "lut",
        }

    def test_mux_sizes_follow_arch(self):
        arch = ArchParams()
        circuits = soft_fabric_circuits(arch)
        assert circuits["sb_mux"].n_inputs == arch.sb_mux_size
        assert circuits["cb_mux"].n_inputs == arch.cb_mux_size
        assert circuits["local_mux"].n_inputs == arch.local_mux_size

    def test_transistor_area_affine(self):
        a1 = transistor_area_um2(1.0)
        a2 = transistor_area_um2(2.0)
        a3 = transistor_area_um2(3.0)
        assert a3 - a2 == pytest.approx(a2 - a1)
