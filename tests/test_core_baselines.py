"""Tests for the related-work comparison baselines."""

import numpy as np
import pytest

from repro.core.baselines import (
    coldest_tile,
    hottest_tile,
    oracle_frequency,
    sensor_uniform_baseline,
)
from repro.core.guardband import thermal_aware_guardband
from repro.core.margins import worst_case_frequency


@pytest.fixture(scope="module")
def result(tiny_flow, fabric25):
    return thermal_aware_guardband(tiny_flow, fabric25, 25.0)


class TestOracle:
    def test_bounds_algorithm1_from_above(self, tiny_flow, fabric25, result):
        oracle = oracle_frequency(tiny_flow, fabric25, result)
        assert result.frequency_hz <= oracle * (1 + 1e-12)

    def test_beats_worst_case(self, tiny_flow, fabric25, result):
        assert oracle_frequency(tiny_flow, fabric25, result) > worst_case_frequency(
            tiny_flow, fabric25
        )

    def test_delta_t_cost_is_small(self, tiny_flow, fabric25, result):
        oracle = oracle_frequency(tiny_flow, fabric25, result)
        assert result.frequency_hz / oracle > 0.9


class TestSensorBaseline:
    def test_hot_sensor_is_safe(self, tiny_flow, fabric25, result):
        baseline = sensor_uniform_baseline(
            tiny_flow, fabric25, result, sensor_tile=hottest_tile(result)
        )
        assert baseline.is_safe

    def test_cold_sensor_reads_lower(self, tiny_flow, fabric25, result):
        cold = sensor_uniform_baseline(
            tiny_flow, fabric25, result, sensor_tile=coldest_tile(result)
        )
        hot = sensor_uniform_baseline(
            tiny_flow, fabric25, result, sensor_tile=hottest_tile(result)
        )
        assert cold.sensor_celsius <= hot.sensor_celsius
        assert cold.frequency_hz >= hot.frequency_hz

    def test_margin_restores_safety(self, tiny_flow, fabric25, result):
        gradient = float(
            result.tile_temperatures.max() - result.tile_temperatures.min()
        )
        padded = sensor_uniform_baseline(
            tiny_flow, fabric25, result,
            sensor_tile=coldest_tile(result),
            sensor_margin_celsius=gradient + 0.1,
        )
        assert padded.is_safe

    def test_rejects_bad_inputs(self, tiny_flow, fabric25, result):
        with pytest.raises(ValueError, match="out of range"):
            sensor_uniform_baseline(tiny_flow, fabric25, result, sensor_tile=10**6)
        with pytest.raises(ValueError, match="margin"):
            sensor_uniform_baseline(
                tiny_flow, fabric25, result, sensor_margin_celsius=-1.0
            )

    def test_tile_finders(self, result):
        temps = result.tile_temperatures
        assert temps[hottest_tile(result)] == temps.max()
        assert temps[coldest_tile(result)] == temps.min()
