"""Tests for thermal-aware design (Figs. 2-3) and architecture (Eq. 1)."""

import numpy as np
import pytest

from repro.core.architecture import expected_delay, select_design_corner
from repro.core.design import (
    corner_delay_curves,
    fig2_normalized_delays,
)


@pytest.fixture(scope="module")
def cp_curves(arch):
    return corner_delay_curves((0.0, 25.0, 100.0), "cp", arch)


class TestCornerCurves:
    def test_each_corner_wins_its_own_temperature(self, cp_curves):
        assert cp_curves.best_corner_at(0.0) == 0.0
        assert cp_curves.best_corner_at(100.0) == 100.0

    def test_d25_optimal_in_middle_band(self, cp_curves):
        # Paper Fig. 3: D25 is optimal for T in ~[20, 65] C.
        winners = {cp_curves.best_corner_at(t) for t in (30.0, 40.0, 50.0)}
        assert winners == {25.0}

    def test_crossover_ratios_in_paper_band(self, cp_curves):
        # Paper: D100 is 6.3 % slower at 0 C; D0 is 9.0 % slower at 100 C.
        at0 = cp_curves.crossover_ratio(100.0, 0.0, 0.0)
        at100 = cp_curves.crossover_ratio(0.0, 100.0, 100.0)
        assert 1.02 < at0 < 1.15
        assert 1.02 < at100 < 1.15

    def test_curves_monotonic_in_temperature(self, cp_curves):
        for delays in cp_curves.curves.values():
            assert np.all(np.diff(delays) > -1e-18)

    def test_component_selection(self, arch):
        bram = corner_delay_curves((0.0, 100.0), "bram", arch)
        assert bram.component == "bram"
        assert set(bram.curves) == {0.0, 100.0}


class TestFig2:
    @pytest.fixture(scope="class")
    def fig2(self, arch):
        return fig2_normalized_delays(arch=arch)

    def test_structure(self, fig2):
        assert set(fig2) == {"cp", "bram", "dsp"}
        for per_point in fig2.values():
            assert set(per_point) == {0.0, 25.0, 100.0}

    def test_each_chunk_normalized_to_fastest(self, fig2):
        for per_point in fig2.values():
            for bars in per_point.values():
                assert min(bars.values()) == pytest.approx(1.0)

    def test_matching_corner_is_fastest_in_its_chunk(self, fig2):
        for component, per_point in fig2.items():
            for t_op in (0.0, 100.0):
                bars = per_point[t_op]
                # Ties (e.g. DSP corners nearly coincide) tolerated.
                assert bars[t_op] == pytest.approx(1.0, abs=5e-3), (component, t_op)

    def test_bram_shows_strongest_corner_effect(self, fig2):
        # Paper Fig. 2: "intensified in the Block RAM".
        bram_spread = max(fig2["bram"][0.0].values())
        dsp_spread = max(fig2["dsp"][0.0].values())
        assert bram_spread > dsp_spread


class TestExpectedDelay:
    def test_point_range_equals_curve(self, fabric25):
        point = expected_delay(fabric25, 40.0, 40.0)
        assert point == pytest.approx(float(fabric25.cp_delay_s(40.0)))

    def test_wider_hotter_range_slower(self, fabric25):
        cool = expected_delay(fabric25, 0.0, 40.0)
        hot = expected_delay(fabric25, 60.0, 100.0)
        assert hot > cool

    def test_average_between_extremes(self, fabric25):
        e = expected_delay(fabric25, 0.0, 100.0)
        assert float(fabric25.cp_delay_s(0.0)) < e < float(
            fabric25.cp_delay_s(100.0)
        )

    def test_rejects_inverted_range(self, fabric25):
        with pytest.raises(ValueError):
            expected_delay(fabric25, 80.0, 20.0)


class TestCornerSelection:
    def test_hot_field_prefers_hot_corner(self, arch):
        choice = select_design_corner(60.0, 100.0, (0.0, 25.0, 70.0, 100.0), arch=arch)
        assert choice.corner_celsius >= 70.0

    def test_cold_field_prefers_cold_corner(self, arch):
        choice = select_design_corner(0.0, 30.0, (0.0, 25.0, 70.0, 100.0), arch=arch)
        assert choice.corner_celsius <= 25.0

    def test_expected_delays_recorded_for_all(self, arch):
        candidates = (0.0, 70.0)
        choice = select_design_corner(40.0, 90.0, candidates, arch=arch)
        assert set(choice.expected_delays) == set(candidates)
        assert choice.expected_delay_s == min(choice.expected_delays.values())

    def test_advantage_nonnegative(self, arch):
        choice = select_design_corner(50.0, 100.0, (0.0, 70.0), arch=arch)
        for corner in choice.expected_delays:
            assert choice.advantage_over(corner) >= 0.0

    def test_rejects_empty_candidates(self, arch):
        with pytest.raises(ValueError):
            select_design_corner(0.0, 100.0, (), arch=arch)
