"""Tests for temperature-grade portfolio planning (Sec. III-C extension)."""

import pytest

from repro.core.architecture import expected_delay, select_design_corner
from repro.core.grades import plan_temperature_grades


class TestGradePlanning:
    def test_single_grade_matches_eq1_selection(self, arch):
        plan = plan_temperature_grades(
            1, 0.0, 100.0, candidates=(0.0, 25.0, 100.0), arch=arch
        )
        choice = select_design_corner(
            0.0, 100.0, candidates=(0.0, 25.0, 100.0), arch=arch
        )
        assert len(plan.bands) == 1
        assert plan.bands[0].corner_celsius == choice.corner_celsius

    def test_bands_tile_the_range(self, arch):
        plan = plan_temperature_grades(
            3, 0.0, 100.0, candidates=(0.0, 25.0, 100.0), arch=arch
        )
        assert plan.bands[0].t_low == 0.0
        assert plan.bands[-1].t_high == 100.0
        for a, b in zip(plan.bands, plan.bands[1:]):
            assert a.t_high == pytest.approx(b.t_low)

    def test_more_grades_never_worse(self, arch):
        candidates = (0.0, 25.0, 100.0)
        one = plan_temperature_grades(1, candidates=candidates, arch=arch)
        three = plan_temperature_grades(3, candidates=candidates, arch=arch)
        assert three.average_delay_s <= one.average_delay_s * (1 + 1e-12)

    def test_band_corners_ordered_with_temperature(self, arch):
        plan = plan_temperature_grades(
            3, 0.0, 100.0, candidates=(0.0, 25.0, 100.0), arch=arch
        )
        corners = [band.corner_celsius for band in plan.bands]
        assert corners == sorted(corners)

    def test_grade_lookup(self, arch):
        plan = plan_temperature_grades(
            2, 0.0, 100.0, candidates=(0.0, 100.0), arch=arch
        )
        cold = plan.grade_for(5.0)
        hot = plan.grade_for(95.0)
        assert cold.corner_celsius <= hot.corner_celsius
        with pytest.raises(ValueError, match="outside"):
            plan.grade_for(140.0)

    def test_band_expected_delay_consistent(self, arch):
        from repro.coffe.fabric import build_fabric

        plan = plan_temperature_grades(
            2, 0.0, 100.0, candidates=(0.0, 100.0), arch=arch, grid_step=10.0
        )
        for band in plan.bands:
            fabric = build_fabric(band.corner_celsius, arch)
            reference = expected_delay(fabric, band.t_low, band.t_high)
            assert band.expected_delay_s == pytest.approx(reference, rel=0.01)

    def test_rejects_bad_inputs(self, arch):
        with pytest.raises(ValueError):
            plan_temperature_grades(0, arch=arch)
        with pytest.raises(ValueError):
            plan_temperature_grades(2, 80.0, 20.0, arch=arch)
        with pytest.raises(ValueError):
            plan_temperature_grades(2, candidates=(), arch=arch)
