"""Tests for Algorithm 1 (thermal-aware guardbanding) and the baseline."""

import numpy as np
import pytest

from repro.core.guardband import (
    GuardbandConfig,
    GuardbandError,
    GuardbandResult,
    thermal_aware_guardband,
)
from repro.core.margins import guardband_gain, worst_case_frequency
from repro.thermal.package import ThermalPackage


@pytest.fixture(scope="module")
def result(tiny_flow, fabric25) -> GuardbandResult:
    return thermal_aware_guardband(tiny_flow, fabric25, t_ambient=25.0)


class TestAlgorithm1:
    def test_beats_worst_case_baseline(self, tiny_flow, fabric25, result):
        f_wc = worst_case_frequency(tiny_flow, fabric25)
        assert result.frequency_hz > f_wc
        gain = guardband_gain(result.frequency_hz, f_wc)
        # Paper Fig. 6 band at 25 C ambient.
        assert 0.15 < gain < 0.55

    def test_never_beats_optimistic_ambient_timing(self, tiny_flow, fabric25, result):
        # The guardbanded clock accounts for self-heating + delta_t, so it
        # must be slower than naively timing everything at Tamb.
        naive = tiny_flow.timing.critical_path(
            fabric25, np.full(tiny_flow.n_tiles, 25.0)
        )
        assert result.frequency_hz < naive.frequency_hz

    def test_converges_in_a_few_iterations(self, result):
        # Paper: "often takes a few (less than ten) iterations".
        assert 1 <= result.iterations < 10

    def test_temperatures_above_ambient(self, result):
        assert np.all(result.tile_temperatures >= result.t_ambient - 1e-9)

    def test_mean_rise_small_at_low_activity(self, result):
        # Paper Sec. IV-B: ~2 C converged rise for the VTR designs.
        assert 0.5 < result.mean_rise_celsius < 8.0

    def test_history_records_iterations(self, result):
        assert len(result.history) == result.iterations
        assert result.history[-1].max_delta_celsius <= result.delta_t

    def test_higher_ambient_lower_frequency(self, tiny_flow, fabric25, result):
        hot = thermal_aware_guardband(tiny_flow, fabric25, t_ambient=70.0)
        assert hot.frequency_hz < result.frequency_hz

    def test_gain_shrinks_with_ambient(self, tiny_flow, fabric25, result):
        # Paper Figs. 6-7: ~36.5 % at 25 C vs ~14 % at 70 C.
        f_wc = worst_case_frequency(tiny_flow, fabric25)
        gain25 = guardband_gain(result.frequency_hz, f_wc)
        hot = thermal_aware_guardband(tiny_flow, fabric25, t_ambient=70.0)
        gain70 = guardband_gain(hot.frequency_hz, f_wc)
        assert gain70 < gain25
        assert 0.02 < gain70 < 0.25

    def test_higher_activity_more_heat(self, tiny_flow, fabric25):
        calm = thermal_aware_guardband(
            tiny_flow, fabric25, 25.0, config=GuardbandConfig(base_activity=0.05)
        )
        busy = thermal_aware_guardband(
            tiny_flow, fabric25, 25.0, config=GuardbandConfig(base_activity=0.6)
        )
        assert busy.mean_rise_celsius > calm.mean_rise_celsius
        assert busy.frequency_hz <= calm.frequency_hz * (1 + 1e-9)

    def test_delta_t_margin_costs_frequency(self, tiny_flow, fabric25):
        tight = thermal_aware_guardband(
            tiny_flow, fabric25, 25.0, config=GuardbandConfig(delta_t=1.0)
        )
        loose = thermal_aware_guardband(
            tiny_flow, fabric25, 25.0, config=GuardbandConfig(delta_t=6.0)
        )
        assert loose.frequency_hz < tight.frequency_hz

    def test_rejects_nonpositive_delta_t(self):
        with pytest.raises(ValueError):
            GuardbandConfig(delta_t=0.0)

    def test_legacy_kwarg_rejects_nonpositive_delta_t(self, tiny_flow, fabric25):
        with pytest.raises(ValueError), pytest.warns(DeprecationWarning):
            thermal_aware_guardband(tiny_flow, fabric25, 25.0, delta_t=0.0)

    def test_nonconvergence_raises(self, tiny_flow, fabric25):
        # A pathologically weak package with a tight threshold cannot settle
        # within one iteration budget.
        weak = ThermalPackage(g_vertical_w_per_k=1e-6, g_lateral_w_per_k=1e-5)
        with pytest.raises(GuardbandError, match="converge"):
            thermal_aware_guardband(
                tiny_flow, fabric25, 25.0,
                config=GuardbandConfig(
                    delta_t=0.05, max_iterations=2, package=weak
                ),
            )

    def test_max_gradient_nonnegative(self, result):
        assert result.max_gradient_celsius >= 0.0


class TestWorstCaseBaseline:
    def test_uniform_100c_timing(self, tiny_flow, fabric25):
        f_wc = worst_case_frequency(tiny_flow, fabric25)
        direct = tiny_flow.timing.critical_path(
            fabric25, np.full(tiny_flow.n_tiles, 100.0)
        )
        assert f_wc == pytest.approx(direct.frequency_hz)

    def test_other_corner_temperature(self, tiny_flow, fabric25):
        assert worst_case_frequency(
            tiny_flow, fabric25, t_worst=85.0
        ) > worst_case_frequency(tiny_flow, fabric25, t_worst=100.0)

    def test_gain_helper_validates(self):
        with pytest.raises(ValueError):
            guardband_gain(1e8, 0.0)


class TestWarmStart:
    def test_seeded_with_own_fixed_point_converges_faster(
        self, tiny_flow, fabric25, result
    ):
        warm = thermal_aware_guardband(
            tiny_flow, fabric25, t_ambient=25.0,
            warm_start=result.tile_temperatures,
        )
        assert warm.warm_started
        assert warm.iterations < result.iterations
        # Tolerance-identical: within the delta_t compensation margin.
        margin = abs(result.history[-1].frequency_hz - result.frequency_hz)
        assert abs(warm.frequency_hz - result.frequency_hz) <= margin

    def test_cold_run_is_not_flagged(self, result):
        assert result.warm_started is False

    def test_seed_clamped_to_ambient(self, tiny_flow, fabric25):
        freezing = np.full(tiny_flow.n_tiles, -40.0)
        warm = thermal_aware_guardband(
            tiny_flow, fabric25, t_ambient=25.0, warm_start=freezing,
        )
        cold = thermal_aware_guardband(tiny_flow, fabric25, t_ambient=25.0)
        # Clamping turns the sub-ambient seed into the flat ambient start.
        assert warm.frequency_hz == pytest.approx(cold.frequency_hz)
        assert warm.iterations == cold.iterations

    def test_rejects_wrong_shape(self, tiny_flow, fabric25):
        with pytest.raises(ValueError, match="shape"):
            thermal_aware_guardband(
                tiny_flow, fabric25, t_ambient=25.0,
                warm_start=np.zeros(tiny_flow.n_tiles + 1),
            )

    def test_rejects_non_finite(self, tiny_flow, fabric25):
        seed = np.full(tiny_flow.n_tiles, 30.0)
        seed[0] = np.nan
        with pytest.raises(ValueError, match="finite"):
            thermal_aware_guardband(
                tiny_flow, fabric25, t_ambient=25.0, warm_start=seed,
            )

    def test_config_validates_policy(self):
        with pytest.raises(ValueError, match="warm_start_policy"):
            GuardbandConfig(warm_start_policy="sometimes")

    def test_config_validates_thermal_weight(self):
        with pytest.raises(ValueError, match="thermal_weight"):
            GuardbandConfig(thermal_weight=-0.1)
        with pytest.raises(ValueError, match="thermal_weight"):
            GuardbandConfig(thermal_weight=float("nan"))
        with pytest.raises(ValueError, match="thermal_weight"):
            GuardbandConfig(thermal_weight=float("inf"))
        assert GuardbandConfig(thermal_weight=0.7).thermal_weight == 0.7

    def test_legacy_policy_kwarg_warns_and_applies(self, tiny_flow, fabric25):
        with pytest.warns(DeprecationWarning):
            result = thermal_aware_guardband(
                tiny_flow, fabric25, t_ambient=25.0,
                warm_start_policy="nearest",
            )
        # Policy only gates engine-side seeding; the direct call stays cold.
        assert result.warm_started is False
