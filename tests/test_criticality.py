"""Tests for structural net criticality and timing-driven placement."""

import numpy as np
import pytest

from repro.cad.criticality import (
    MAX_WEIGHT,
    MIN_WEIGHT,
    criticality_weights,
    net_criticalities,
)
from repro.cad.flow import run_flow
from repro.netlists.generator import NetlistSpec, generate_netlist
from repro.netlists.netlist import BlockType, Netlist


def chain_netlist(depth: int) -> Netlist:
    """A LUT chain plus a shallow side branch, both register-bounded."""
    nl = Netlist(f"chain{depth}")
    pi = nl.add_block(BlockType.INPUT)
    net = nl.add_net(pi)
    for i in range(depth):
        lut = nl.add_block(BlockType.LUT, f"deep_{i}")
        nl.connect(net, lut)
        net = nl.add_net(lut)
    ff = nl.add_block(BlockType.FF)
    nl.connect(net, ff)
    nl.connect(nl.add_net(ff), nl.add_block(BlockType.OUTPUT))
    # Shallow branch off the primary input.
    shallow = nl.add_block(BlockType.LUT, "shallow")
    nl.connect(nl.nets[0], shallow)
    nl.connect(nl.add_net(shallow), nl.add_block(BlockType.OUTPUT))
    nl.validate()
    return nl


class TestNetCriticalities:
    def test_range(self, tiny_netlist):
        crits = net_criticalities(tiny_netlist)
        assert all(0.0 <= c <= 1.0 + 1e-12 for c in crits.values())
        assert max(crits.values()) == pytest.approx(1.0)

    def test_deep_chain_outranks_shallow_branch(self):
        nl = chain_netlist(6)
        crits = net_criticalities(nl)
        deep_net = next(
            n for n in nl.nets if nl.blocks[n.driver].name == "deep_2"
        )
        shallow_net = next(
            n for n in nl.nets if nl.blocks[n.driver].name == "shallow"
        )
        assert crits[deep_net.id] > 2.0 * crits[shallow_net.id]

    def test_dsp_paths_count_extra(self):
        nl = generate_netlist(
            NetlistSpec("dspcrit", n_luts=12, n_dsps=3, depth=3, seed=4)
        )
        crits = net_criticalities(nl)
        dsp_nets = [
            crits[n.id]
            for n in nl.nets
            if nl.blocks[n.driver].type == BlockType.DSP
        ]
        assert max(dsp_nets) > 0.5

    def test_weights_bounded(self, tiny_netlist):
        weights = criticality_weights(tiny_netlist)
        assert all(MIN_WEIGHT <= w <= MAX_WEIGHT + 1e-12 for w in weights.values())

    def test_exponent_validation(self, tiny_netlist):
        with pytest.raises(ValueError):
            criticality_weights(tiny_netlist, exponent=0.0)


class TestTimingDrivenFlow:
    def test_usually_shortens_the_critical_path(self, arch, fabric25):
        nl = generate_netlist(
            NetlistSpec("td_probe", n_luts=60, depth=10, seed=31)
        )
        plain = run_flow(nl, arch, seed=5, use_cache=False)
        driven = run_flow(nl, arch, seed=5, use_cache=False, timing_driven=True)
        t = np.full(plain.n_tiles, 25.0)
        cp_plain = plain.timing.critical_path(fabric25, t).critical_path_s
        cp_driven = driven.timing.critical_path(fabric25, t).critical_path_s
        # An anneal is stochastic; allow a small regression bound but expect
        # no blow-up and usually an improvement.
        assert cp_driven < cp_plain * 1.05

    def test_cache_keys_distinct(self, arch):
        nl = generate_netlist(NetlistSpec("td_cache", n_luts=12, depth=3, seed=2))
        plain = run_flow(nl, arch, seed=5)
        driven = run_flow(nl, arch, seed=5, timing_driven=True)
        assert plain is not driven
