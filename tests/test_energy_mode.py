"""Energy-mode objective: voltage bisection at iso-frequency.

Covers the whole-stack wiring of ``mode="energy"``: config validation,
the single and batched bisection loops, the result invariants, the wire
and store serialisation of the new fields, and the CLI diagnostics.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.core.guardband import (
    EnergyReport,
    GuardbandConfig,
    GuardbandError,
    GuardbandResult,
    thermal_aware_guardband,
    thermal_aware_guardband_batch,
)
from repro.core.margins import worst_case_frequency
from repro.power.voltage import VDD_MIN_V, VDD_TOLERANCE_V, VoltageScaling
from repro.runner.results import JobResult, outcome_from_record
from repro.runner.spec import ExperimentSpec
from repro.service.wire import WireError, from_wire, to_wire
from repro.store.store import store_digest
from repro.technology.ptm22 import VDD_NOMINAL


# --- configuration validation -------------------------------------------


class TestConfigValidation:
    def test_energy_mode_requires_target(self):
        with pytest.raises(ValueError, match="requires target_frequency_hz"):
            GuardbandConfig(mode="energy")

    def test_frequency_mode_rejects_target(self):
        with pytest.raises(ValueError, match="only meaningful"):
            GuardbandConfig(mode="frequency", target_frequency_hz=1e8)

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError, match="mode"):
            GuardbandConfig(mode="power")

    @pytest.mark.parametrize("bad", [0.0, -1e8, float("nan"), float("inf")])
    def test_non_positive_target_rejected(self, bad):
        with pytest.raises(ValueError, match="positive and finite"):
            GuardbandConfig(mode="energy", target_frequency_hz=bad)

    def test_experiment_spec_mirrors_config_rules(self):
        with pytest.raises(ValueError, match="requires target_frequency_hz"):
            ExperimentSpec(benchmarks=("bgm",), mode="energy")
        with pytest.raises(ValueError, match="only meaningful"):
            ExperimentSpec(benchmarks=("bgm",), target_frequency_hz=1e8)
        with pytest.raises(ValueError, match="mode"):
            ExperimentSpec(benchmarks=("bgm",), mode="voltage")

    def test_spec_objective_flows_into_job_config(self):
        spec = ExperimentSpec(
            benchmarks=("bgm",), mode="energy", target_frequency_hz=5e7
        )
        job = spec.expand()[0]
        assert job.config.mode == "energy"
        assert job.config.target_frequency_hz == 5e7


# --- frequency mode: unchanged defaults ---------------------------------


class TestFrequencyModeInvariants:
    def test_default_result_reports_nominal_supply(self, tiny_flow, fabric25):
        result = thermal_aware_guardband(tiny_flow, fabric25, 25.0)
        assert result.mode == "frequency"
        assert result.vdd_v == VDD_NOMINAL
        assert result.energy is None

    def test_positional_construction_deprecated(self):
        temps = np.full(4, 30.0)
        with pytest.warns(DeprecationWarning, match="positional"):
            GuardbandResult(1e8, 1e-8, temps, 3, 25.0, 2.0, 0.1)
        # Keyword construction is the supported spelling and stays silent.
        import warnings

        with warnings.catch_warnings():
            warnings.simplefilter("error")
            result = GuardbandResult(
                frequency_hz=1e8,
                critical_path_s=1e-8,
                tile_temperatures=temps,
                iterations=3,
                t_ambient=25.0,
                delta_t=2.0,
                total_power_w=0.1,
            )
        assert result.vdd_v == VDD_NOMINAL


# --- energy mode: the bisection loop ------------------------------------


@pytest.fixture(scope="module")
def energy_config(tiny_flow, fabric25):
    """Energy config targeting the design's own worst-case clock.

    The worst-case baseline always closes at nominal supply (Algorithm 1
    only ever improves on it), so the target is feasible by construction
    and the whole thermal margin converts to voltage headroom.
    """
    f_wc = worst_case_frequency(tiny_flow, fabric25)
    return GuardbandConfig(mode="energy", target_frequency_hz=f_wc)


@pytest.fixture(scope="module")
def energy_result(tiny_flow, fabric25, energy_config):
    return thermal_aware_guardband(
        tiny_flow, fabric25, 25.0, config=energy_config
    )


class TestEnergyMode:
    def test_scales_supply_below_nominal(self, energy_result, energy_config):
        assert energy_result.mode == "energy"
        assert VDD_MIN_V <= energy_result.vdd_v < VDD_NOMINAL
        assert (
            energy_result.frequency_hz == energy_config.target_frequency_hz
        )

    def test_timing_closes_at_target(self, energy_result):
        # critical_path_s is re-timed at the converged profile + delta_t
        # with the closing supply's delay scale, so closure is simply
        # cp <= target period.
        period_s = 1.0 / energy_result.frequency_hz
        assert energy_result.critical_path_s <= period_s

    def test_energy_report_is_consistent(self, energy_result):
        report = energy_result.energy
        assert isinstance(report, EnergyReport)
        assert report.vdd_v == energy_result.vdd_v
        assert report.vdd_nominal_v == VDD_NOMINAL
        assert report.total_power_w == pytest.approx(
            energy_result.total_power_w
        )
        assert 0.0 < report.power_saving_fraction < 1.0
        assert report.power_saving_fraction == pytest.approx(
            1.0 - report.total_power_w / report.nominal_power_w
        )
        period_s = 1.0 / report.target_frequency_hz
        assert report.energy_per_cycle_j == pytest.approx(
            report.total_power_w * period_s
        )
        assert report.nominal_energy_per_cycle_j == pytest.approx(
            report.nominal_power_w * period_s
        )

    def test_cooler_ambient_closes_at_lower_supply(
        self, tiny_flow, fabric25, energy_config
    ):
        cold = thermal_aware_guardband(
            tiny_flow, fabric25, 15.0, config=energy_config
        )
        hot = thermal_aware_guardband(
            tiny_flow, fabric25, 75.0, config=energy_config
        )
        # Cooler silicon is faster, so more of the delay budget converts
        # to supply reduction; the bisection window is much wider than
        # the tolerance here, so the ordering is strict.
        assert cold.vdd_v < hot.vdd_v
        assert cold.energy.power_saving_fraction > (
            hot.energy.power_saving_fraction
        )

    def test_infeasible_target_raises_actionable_error(
        self, tiny_flow, fabric25
    ):
        config = GuardbandConfig(mode="energy", target_frequency_hz=1e12)
        with pytest.raises(GuardbandError, match="does not close"):
            thermal_aware_guardband(tiny_flow, fabric25, 25.0, config=config)

    def test_batch_matches_looped_runs(
        self, tiny_flow, fabric25, energy_config
    ):
        ambients = [15.0, 45.0, 75.0]
        looped = [
            thermal_aware_guardband(
                tiny_flow, fabric25, t, config=energy_config
            )
            for t in ambients
        ]
        batched = thermal_aware_guardband_batch(
            tiny_flow, fabric25, ambients, config=energy_config
        )
        for one, many in zip(looped, batched):
            assert isinstance(many, GuardbandResult)
            assert many.mode == "energy"
            # Both paths bisect the same window to the same tolerance;
            # the batched fixed point may settle a fraction of a degree
            # away, so closing supplies agree to within one step.
            assert abs(one.vdd_v - many.vdd_v) <= VDD_TOLERANCE_V
            assert one.energy.power_saving_fraction == pytest.approx(
                many.energy.power_saving_fraction, abs=0.02
            )


# --- persistence: wire envelopes, store digests, JSONL records ----------


class TestSerialisation:
    def test_experiment_spec_round_trips(self):
        spec = ExperimentSpec(
            benchmarks=("bgm",),
            ambients=(15.0, 45.0),
            mode="energy",
            target_frequency_hz=5e7,
        )
        decoded = from_wire(json.loads(json.dumps(to_wire(spec))))
        assert decoded == spec
        assert decoded.mode == "energy"
        assert decoded.target_frequency_hz == 5e7

    def test_config_round_trips(self):
        config = GuardbandConfig(mode="energy", target_frequency_hz=8e7)
        decoded = from_wire(json.loads(json.dumps(to_wire(config))))
        assert decoded == config

    def test_invalid_combination_rejected_on_decode(self):
        envelope = to_wire(ExperimentSpec(benchmarks=("bgm",)))
        envelope["payload"]["mode"] = "energy"  # no target: invalid pair
        with pytest.raises(WireError, match="target_frequency_hz"):
            from_wire(envelope)

    def test_store_digest_distinguishes_objectives(self):
        frequency = GuardbandConfig()
        energy_a = GuardbandConfig(mode="energy", target_frequency_hz=5e7)
        energy_b = GuardbandConfig(mode="energy", target_frequency_hz=6e7)
        digests = {
            store_digest("flow-key", config, 25.0, 25.0)
            for config in (frequency, energy_a, energy_b)
        }
        assert len(digests) == 3

    def test_job_result_record_round_trips(self):
        result = JobResult(
            job_id="tiny@T25@D25",
            benchmark="tiny",
            t_ambient=25.0,
            corner=25.0,
            frequency_hz=5e7,
            worst_case_hz=5e7,
            gain=0.0,
            iterations=8,
            total_power_w=0.05,
            max_tile_celsius=40.0,
            mean_tile_celsius=35.0,
            wall_seconds=1.0,
            mode="energy",
            vdd_v=0.65,
            energy_saving=0.2,
            energy_per_cycle_j=1e-9,
        )
        reloaded = outcome_from_record(
            json.loads(json.dumps(result.to_record()))
        )
        assert reloaded == result

    def test_old_records_load_with_defaults(self):
        # A record streamed by a pre-energy engine has none of the new
        # fields; it must still reload (as a frequency-mode cell).
        record = {
            "type": "result",
            "job_id": "tiny@T25@D25",
            "benchmark": "tiny",
            "t_ambient": 25.0,
            "corner": 25.0,
            "frequency_hz": 1e8,
            "worst_case_hz": 9e7,
            "gain": 0.11,
            "iterations": 5,
            "total_power_w": 0.05,
            "max_tile_celsius": 40.0,
            "mean_tile_celsius": 35.0,
            "wall_seconds": 1.0,
        }
        reloaded = outcome_from_record(record)
        assert reloaded.mode == "frequency"
        assert reloaded.vdd_v is None
        assert reloaded.energy_saving is None


# --- runner integration: energy sweeps end to end ------------------------


class TestRunnerIntegration:
    def test_energy_sweep_records_supply_and_savings(self, tmp_path):
        from repro.netlists.generator import NetlistSpec
        from repro.runner import run_sweep

        spec = ExperimentSpec(
            benchmarks=(
                NetlistSpec(
                    "energy_cell", n_luts=16, depth=4, seed=9,
                    base_activity=0.2,
                ),
            ),
            ambients=(25.0, 60.0),
            mode="energy",
            target_frequency_hz=3e7,
        )
        jsonl = tmp_path / "sweep.jsonl"
        sweep = run_sweep(spec, jsonl_path=str(jsonl))
        assert sweep.ok
        assert len(sweep.results) == 2
        for result in sweep.results:
            assert result.mode == "energy"
            assert result.frequency_hz == 3e7
            assert result.vdd_v is not None and result.vdd_v < VDD_NOMINAL
            assert result.energy_saving is not None
            assert result.energy_saving > 0.0
            assert result.energy_per_cycle_j is not None
        # The JSONL stream round-trips the new fields.
        from repro.runner.results import SweepResult

        reloaded = SweepResult.from_jsonl(jsonl)
        assert {r.job_id: r.vdd_v for r in reloaded.results} == {
            r.job_id: r.vdd_v for r in sweep.results
        }


# --- CLI: shared objective flags and --json diagnostics ------------------


class TestCliDiagnostics:
    def _run(self, argv, capsys):
        from repro.cli import main

        code = main(argv)
        return code, capsys.readouterr()

    def test_energy_without_target_is_json_error(self, capsys):
        code, captured = self._run(
            ["sweep", "--benchmarks", "bgm", "--mode", "energy", "--json"],
            capsys,
        )
        assert code == 1
        payload = json.loads(captured.out)
        assert payload["error"] == "ValueError"
        assert "target_frequency_hz" in payload["message"]

    def test_target_without_energy_mode_is_json_error(self, capsys):
        code, captured = self._run(
            [
                "suite",
                "--target-frequency",
                "1e8",
                "--json",
            ],
            capsys,
        )
        assert code == 1
        payload = json.loads(captured.out)
        assert payload["error"] == "ValueError"
        assert "only meaningful" in payload["message"]

    def test_plain_diagnostic_on_stderr_without_json(self, capsys):
        code, captured = self._run(
            ["sweep", "--benchmarks", "bgm", "--mode", "energy"],
            capsys,
        )
        assert code == 1
        assert "error: ValueError" in captured.err
        assert captured.out == ""


# --- voltage model sanity ------------------------------------------------


class TestVoltageScaling:
    def test_nominal_supply_is_identity(self):
        scaling = VoltageScaling()
        temps = np.array([25.0, 60.0, 95.0])
        np.testing.assert_allclose(
            scaling.delay_scale_tiles(VDD_NOMINAL, temps), 1.0
        )
        np.testing.assert_allclose(
            scaling.leakage_scale_tiles(VDD_NOMINAL, temps), 1.0
        )
        assert scaling.dynamic_scale(VDD_NOMINAL) == 1.0

    def test_lower_supply_slower_and_leaner(self):
        scaling = VoltageScaling()
        delay, dynamic, leakage = scaling.scale_summary(0.65)
        assert delay > 1.0
        assert dynamic < 1.0
        assert leakage < 1.0

    def test_scaled_arrival_pass_matches_reference(self, tiny_flow, fabric25):
        from repro.power.voltage import resource_delay_scale

        timing = tiny_flow.timing
        temps = np.full(tiny_flow.n_tiles, 40.0)
        tile_scale = VoltageScaling().delay_scale_tiles(0.7, temps)
        scale = resource_delay_scale(tile_scale)
        arr_f, pred_f, ends_f = timing._arrival_pass(fabric25, temps, scale)
        arr_r, pred_r, ends_r = timing._arrival_pass_reference(
            fabric25, temps, scale
        )
        np.testing.assert_allclose(arr_f, arr_r, rtol=1e-12, atol=0.0)
        np.testing.assert_array_equal(pred_f, pred_r)
        assert ends_f.keys() == ends_r.keys()
        for block_id, t_end in ends_r.items():
            assert ends_f[block_id] == pytest.approx(t_end, rel=1e-12)
