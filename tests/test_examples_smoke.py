"""Smoke tests: every example script runs end-to-end.

These reuse the warm flow/fabric caches, so they are cheap after the first
suite run; they guarantee the documented entry points never rot.
"""

import runpy
import sys

import pytest

EXAMPLES = [
    ("examples/quickstart.py", []),
    ("examples/corner_exploration.py", []),
    ("examples/characterize_device.py", ["25"]),
    ("examples/thermal_map.py", ["sha"]),
]


@pytest.mark.parametrize("path,argv", EXAMPLES, ids=[p for p, _ in EXAMPLES])
def test_example_runs(path, argv, capsys, monkeypatch):
    monkeypatch.setattr(sys, "argv", [path] + argv)
    runpy.run_path(path, run_name="__main__")
    out = capsys.readouterr().out
    assert len(out) > 100  # produced a real report


def test_datacenter_example(capsys, monkeypatch):
    # Heavier (builds several corner fabrics); kept separate so it's easy
    # to deselect with -k.
    monkeypatch.setattr(sys, "argv", ["examples/datacenter_accelerator.py"])
    runpy.run_path("examples/datacenter_accelerator.py", run_name="__main__")
    out = capsys.readouterr().out
    assert "thermal-aware grade" in out
    assert "boost" in out
