"""Extended corner-fabric behaviour across the full grade ladder."""

import numpy as np
import pytest

from repro.coffe.fabric import build_fabric

CORNERS = (0.0, 25.0, 50.0, 70.0, 100.0)


@pytest.fixture(scope="module")
def ladder(arch):
    return {c: build_fabric(c, arch) for c in CORNERS}


class TestGradeLadder:
    def test_every_grade_beats_neighbours_at_home(self, ladder):
        """Evaluated at its own corner, each grade is at least as fast as
        every other grade (weak inequality: corners may tie)."""
        for home, fabric in ladder.items():
            own = float(fabric.cp_delay_s(home))
            for other_corner, other in ladder.items():
                assert own <= float(other.cp_delay_s(home)) * (1 + 1e-9), (
                    home, other_corner,
                )

    def test_intercept_slope_tradeoff(self, ladder):
        """Hotter grades trade a higher cold intercept for a flatter slope."""
        cold_delays = {c: float(f.cp_delay_s(0.0)) for c, f in ladder.items()}
        rises = {
            c: float(f.cp_delay_s(100.0)) / float(f.cp_delay_s(0.0))
            for c, f in ladder.items()
        }
        assert cold_delays[100.0] > cold_delays[0.0]
        assert rises[100.0] < rises[0.0]

    def test_crossover_temperature_ordered(self, ladder):
        """The D0/D100 crossover sits strictly inside the range and above
        the D0/D70 crossover."""
        grid = np.arange(0.0, 101.0, 1.0)

        def crossover(a, b):
            da = np.asarray(ladder[a].cp_delay_s(grid))
            db = np.asarray(ladder[b].cp_delay_s(grid))
            sign = da - db
            idx = np.argmax(sign < 0.0) if sign[0] > 0 else np.argmax(sign > 0.0)
            return float(grid[idx])

        x_0_70 = crossover(70.0, 0.0)
        x_0_100 = crossover(100.0, 0.0)
        assert 0.0 < x_0_70 <= x_0_100 < 100.0

    def test_leakage_anchor_shared(self, ladder):
        """All grades share the same calibration, so the 25 C-corner fabric
        (and only it) matches Table II at 25 C exactly; others are close
        but not identical (different sizing)."""
        from repro.coffe.characterize import TABLE2

        base = float(ladder[25.0].delay_s("lut", 25.0)) * 1e12
        assert base == pytest.approx(TABLE2["lut"].delay_ps(25.0), rel=1e-3)
        hot = float(ladder[100.0].delay_s("lut", 25.0)) * 1e12
        assert hot != pytest.approx(base, rel=1e-6)

    def test_areas_within_family_budget(self, ladder):
        """Every grade respects the family floorplan: its resources stay
        within the headroom of the reference sizing."""
        from repro.coffe.characterize import AREA_BUDGET_HEADROOM, TABLE2

        base_area = {r: ladder[25.0].area_um2(r) for r in TABLE2}
        for corner, fabric in ladder.items():
            for resource in TABLE2:
                ratio = fabric.area_um2(resource) / base_area[resource]
                assert ratio <= AREA_BUDGET_HEADROOM * 1.05 + 0.35, (
                    corner, resource, ratio,
                )
