"""Tests for the on-disk place-and-route cache."""

import pickle

import pytest

from repro.cad.flow import _disk_cache_path, run_flow
from repro.netlists.generator import NetlistSpec, generate_netlist


@pytest.fixture()
def cache_dir(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    return tmp_path


@pytest.fixture()
def small_netlist():
    return generate_netlist(NetlistSpec("cache_probe", n_luts=10, depth=3, seed=77))


class TestDiskCache:
    def test_writes_and_reloads(self, cache_dir, small_netlist, arch):
        first = run_flow(small_netlist, arch, seed=3)
        files = list(cache_dir.glob("*.pkl"))
        assert len(files) == 1
        # Purge the in-memory cache, reload from disk.
        from repro.cad import flow as flow_module

        flow_module._FLOW_CACHE.clear()
        second = run_flow(small_netlist, arch, seed=3)
        assert second.placement.location == first.placement.location

    def test_corrupt_cache_recovered(self, cache_dir, small_netlist, arch):
        path = _disk_cache_path(small_netlist, arch, 3)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_bytes(b"not a pickle")
        from repro.cad import flow as flow_module

        flow_module._FLOW_CACHE.clear()
        result = run_flow(small_netlist, arch, seed=3)  # must not raise
        assert result.netlist is small_netlist
        # The corrupt entry was replaced by a valid one.
        with open(path, "rb") as handle:
            pickle.load(handle)

    def test_cache_off(self, monkeypatch, small_netlist, arch):
        monkeypatch.setenv("REPRO_CACHE_DIR", "off")
        assert _disk_cache_path(small_netlist, arch, 3) is None

    def test_use_cache_false_bypasses(self, cache_dir, small_netlist, arch):
        run_flow(small_netlist, arch, seed=9, use_cache=False)
        assert not list(cache_dir.glob("*.pkl"))

    def test_key_distinguishes_seeds(self, cache_dir, small_netlist, arch):
        a = _disk_cache_path(small_netlist, arch, 1)
        b = _disk_cache_path(small_netlist, arch, 2)
        assert a != b

    def test_key_distinguishes_arch(self, cache_dir, small_netlist, arch):
        other = arch.with_changes(cluster_size=8)
        assert _disk_cache_path(small_netlist, arch, 1) != _disk_cache_path(
            small_netlist, other, 1
        )
