"""Tests for the on-disk place-and-route cache."""

import os
import pickle
import subprocess
import sys

import pytest

from repro.cad.flow import (
    FLOW_CACHE_VERSION,
    _disk_cache_path,
    arch_digest,
    flow_cache_key,
    flow_cache_key_for,
    run_flow,
)
from repro.netlists.generator import NetlistSpec, generate_netlist


@pytest.fixture()
def cache_dir(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    return tmp_path


@pytest.fixture()
def small_netlist():
    return generate_netlist(NetlistSpec("cache_probe", n_luts=10, depth=3, seed=77))


class TestDiskCache:
    def test_writes_and_reloads(self, cache_dir, small_netlist, arch):
        first = run_flow(small_netlist, arch, seed=3)
        files = list(cache_dir.glob("*.pkl"))
        assert len(files) == 1
        # Purge the in-memory cache, reload from disk.
        from repro.cad import flow as flow_module

        flow_module._FLOW_CACHE.clear()
        second = run_flow(small_netlist, arch, seed=3)
        assert second.placement.location == first.placement.location

    def test_corrupt_cache_recovered(self, cache_dir, small_netlist, arch):
        path = _disk_cache_path(small_netlist, arch, 3)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_bytes(b"not a pickle")
        from repro.cad import flow as flow_module

        flow_module._FLOW_CACHE.clear()
        result = run_flow(small_netlist, arch, seed=3)  # must not raise
        assert result.netlist is small_netlist
        # The corrupt bytes were quarantined for post-mortem, and the
        # entry was recomputed and re-cached as a valid pickle.
        quarantined = list(path.parent.glob("*.corrupt"))
        assert len(quarantined) == 1
        assert quarantined[0].read_bytes() == b"not a pickle"
        with open(path, "rb") as handle:
            pickle.load(handle)

    def test_cache_off(self, monkeypatch, small_netlist, arch):
        monkeypatch.setenv("REPRO_CACHE_DIR", "off")
        assert _disk_cache_path(small_netlist, arch, 3) is None

    def test_use_cache_false_bypasses(self, cache_dir, small_netlist, arch):
        run_flow(small_netlist, arch, seed=9, use_cache=False)
        assert not list(cache_dir.glob("*.pkl"))

    def test_key_distinguishes_seeds(self, cache_dir, small_netlist, arch):
        a = _disk_cache_path(small_netlist, arch, 1)
        b = _disk_cache_path(small_netlist, arch, 2)
        assert a != b

    def test_key_distinguishes_arch(self, cache_dir, small_netlist, arch):
        other = arch.with_changes(cluster_size=8)
        assert _disk_cache_path(small_netlist, arch, 1) != _disk_cache_path(
            small_netlist, other, 1
        )

    def test_result_carries_cache_key(self, cache_dir, small_netlist, arch):
        result = run_flow(small_netlist, arch, seed=3)
        assert result.cache_key == flow_cache_key(small_netlist, arch, 3)
        # Reloads (memory or disk) keep the key.
        from repro.cad import flow as flow_module

        flow_module._FLOW_CACHE.clear()
        assert run_flow(small_netlist, arch, seed=3).cache_key == result.cache_key


class TestCacheKeyDigest:
    """The key must be a content digest, stable across interpreters —
    ``hash()`` is salted per process and silently splits the cache."""

    def test_deterministic_within_process(self, small_netlist, arch):
        assert arch_digest(arch) == arch_digest(arch)
        assert flow_cache_key(small_netlist, arch, 3) == flow_cache_key(
            small_netlist, arch, 3
        )

    def test_sensitive_to_every_arch_field(self, arch):
        baseline = arch_digest(arch)
        for changed in (
            arch.with_changes(cluster_size=arch.cluster_size + 2),
            arch.with_changes(channel_tracks=arch.channel_tracks + 4),
            arch.with_changes(vdd=arch.vdd + 0.05),
        ):
            assert arch_digest(changed) != baseline

    def test_key_distinguishes_thermal_weight(self, small_netlist, arch):
        base = flow_cache_key(small_netlist, arch, 3)
        thermal = flow_cache_key(small_netlist, arch, 3, thermal_weight=0.7)
        assert base != thermal
        assert "_w0_" in base
        assert "_w0.7_" in thermal

    def test_thermal_weight_composes_with_timing_driven(
        self, small_netlist, arch
    ):
        keys = {
            flow_cache_key_for(small_netlist, arch, seed=3),
            flow_cache_key_for(small_netlist, arch, seed=3, timing_driven=True),
            flow_cache_key_for(small_netlist, arch, seed=3, thermal_weight=0.7),
            flow_cache_key_for(
                small_netlist, arch, seed=3,
                timing_driven=True, thermal_weight=0.7,
            ),
        }
        assert len(keys) == 4

    def test_disk_path_distinguishes_thermal_weight(
        self, cache_dir, small_netlist, arch
    ):
        plain = _disk_cache_path(small_netlist, arch, 3)
        thermal = _disk_cache_path(small_netlist, arch, 3, thermal_weight=0.7)
        assert plain != thermal

    def test_key_embeds_cache_version(self, small_netlist, arch):
        assert flow_cache_key(small_netlist, arch, 3).startswith(
            f"v{FLOW_CACHE_VERSION}_"
        )

    def test_stable_across_interpreters(self, small_netlist, arch):
        """Fresh interpreter (fresh hash salt) computes the same key."""
        script = (
            "from repro.arch.params import ArchParams\n"
            "from repro.cad.flow import arch_digest\n"
            "print(arch_digest(ArchParams()), end='')\n"
        )
        env = dict(os.environ, PYTHONPATH="src", PYTHONHASHSEED="12345")
        out = subprocess.run(
            [sys.executable, "-c", script],
            capture_output=True, text=True, check=True, env=env,
            cwd=os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
        )
        assert out.stdout == arch_digest(type(arch)())
