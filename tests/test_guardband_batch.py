"""Equivalence tests for batched Algorithm 1 and the batched sweep engine.

The batched kernel (:func:`thermal_aware_guardband_batch`) must agree
with the looped single-cell path within the ``delta_t`` compensation
margin (DESIGN.md §12), isolate diverging cells from their batch-mates,
and preserve the engine's per-cell record/store/resume semantics when
enabled through ``run_sweep(batch=True)``.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import observe
from repro.core.guardband import (
    BatchCell,
    GuardbandConfig,
    GuardbandError,
    GuardbandResult,
    thermal_aware_guardband,
    thermal_aware_guardband_batch,
)
from repro.netlists.generator import NetlistSpec
from repro.observe.sinks import InMemorySink
from repro.runner import ExperimentSpec, JobFailure, JobResult, run_sweep
from repro.runner import engine as engine_module
from repro.store import open_store, store_digest

AMBIENTS = (5.0, 25.0, 45.0, 65.0)

BATCH_A = NetlistSpec("batch_tiny_a", n_luts=10, depth=3, seed=71,
                      base_activity=0.2)
BATCH_B = NetlistSpec("batch_tiny_b", n_luts=12, depth=3, seed=72,
                      base_activity=0.18)


@pytest.fixture()
def cache_dir(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "flows"))
    return tmp_path


@pytest.fixture(scope="module")
def looped(tiny_flow, fabric25):
    """Single-cell reference runs, one per ambient."""
    return {
        t: thermal_aware_guardband(tiny_flow, fabric25, t_ambient=t)
        for t in AMBIENTS
    }


def _margin(reference: GuardbandResult) -> float:
    """The delta_t compensation margin: the frequency step the final
    re-time at ``T + delta_t`` absorbs (same tolerance the warm-start
    equivalence uses, DESIGN.md §11)."""
    return abs(reference.history[-1].frequency_hz - reference.frequency_hz)


class TestBatchEquivalence:
    def test_matches_looped_within_margin(self, tiny_flow, fabric25, looped):
        outcomes = thermal_aware_guardband_batch(
            tiny_flow, fabric25, list(AMBIENTS)
        )
        assert len(outcomes) == len(AMBIENTS)
        for t_ambient, outcome in zip(AMBIENTS, outcomes):
            reference = looped[t_ambient]
            assert isinstance(outcome, GuardbandResult)
            assert outcome.t_ambient == t_ambient
            drift = abs(outcome.frequency_hz - reference.frequency_hz)
            assert drift <= max(_margin(reference), 1e-9)
            # The joint iteration takes the same trajectory per cell.
            assert outcome.iterations == reference.iterations
            np.testing.assert_allclose(
                outcome.tile_temperatures,
                reference.tile_temperatures,
                atol=reference.delta_t,
            )

    def test_randomized_ambients_and_activity(self, tiny_flow, fabric25):
        """Satellite 5: randomized operating points under a non-default
        activity still agree with the looped path per cell."""
        rng = np.random.default_rng(17)
        ambients = sorted(float(t) for t in rng.uniform(0.0, 80.0, size=6))
        config = GuardbandConfig(base_activity=0.45)
        outcomes = thermal_aware_guardband_batch(
            tiny_flow, fabric25, ambients, config=config
        )
        for t_ambient, outcome in zip(ambients, outcomes):
            reference = thermal_aware_guardband(
                tiny_flow, fabric25, t_ambient, config=config
            )
            assert isinstance(outcome, GuardbandResult)
            drift = abs(outcome.frequency_hz - reference.frequency_hz)
            assert drift <= max(_margin(reference), 1e-9)
            assert outcome.iterations == reference.iterations

    def test_other_corner_fabric(self, tiny_flow, fabric70):
        """The batch is generic in the fabric corner it runs against."""
        outcomes = thermal_aware_guardband_batch(
            tiny_flow, fabric70, [25.0, 55.0]
        )
        for t_ambient, outcome in zip((25.0, 55.0), outcomes):
            reference = thermal_aware_guardband(
                tiny_flow, fabric70, t_ambient
            )
            assert isinstance(outcome, GuardbandResult)
            drift = abs(outcome.frequency_hz - reference.frequency_hz)
            assert drift <= max(_margin(reference), 1e-9)

    def test_histories_match_looped_trajectories(
        self, tiny_flow, fabric25, looped
    ):
        outcomes = thermal_aware_guardband_batch(
            tiny_flow, fabric25, list(AMBIENTS)
        )
        for t_ambient, outcome in zip(AMBIENTS, outcomes):
            reference = looped[t_ambient]
            assert len(outcome.history) == len(reference.history)
            for got, want in zip(outcome.history, reference.history):
                assert got.frequency_hz == pytest.approx(
                    want.frequency_hz, rel=1e-9
                )
                assert got.total_power_w == pytest.approx(
                    want.total_power_w, rel=1e-9
                )
                assert got.max_delta_celsius == pytest.approx(
                    want.max_delta_celsius, abs=1e-6
                )

    def test_single_cell_batch_matches_single_run(
        self, tiny_flow, fabric25, looped
    ):
        (outcome,) = thermal_aware_guardband_batch(
            tiny_flow, fabric25, [25.0]
        )
        reference = looped[25.0]
        assert isinstance(outcome, GuardbandResult)
        assert abs(outcome.frequency_hz - reference.frequency_hz) <= max(
            _margin(reference), 1e-9
        )
        assert outcome.iterations == reference.iterations

    def test_empty_batch(self, tiny_flow, fabric25):
        assert thermal_aware_guardband_batch(tiny_flow, fabric25, []) == []

    def test_results_do_not_alias_each_other(self, tiny_flow, fabric25):
        outcomes = thermal_aware_guardband_batch(
            tiny_flow, fabric25, [25.0, 45.0]
        )
        a, b = outcomes
        assert isinstance(a, GuardbandResult)
        assert isinstance(b, GuardbandResult)
        assert not np.shares_memory(a.tile_temperatures, b.tile_temperatures)

    def test_mixed_convergence_speeds(self, tiny_flow, fabric25, looped):
        """A warm-started cell drops out of the batch early; the slower
        cold batch-mates still converge to their own fixed points."""
        reference = looped[25.0]
        outcomes = thermal_aware_guardband_batch(
            tiny_flow, fabric25,
            [
                BatchCell(25.0, warm_start=reference.tile_temperatures),
                BatchCell(25.0),
                BatchCell(65.0),
            ],
        )
        warm, cold, hot = outcomes
        assert isinstance(warm, GuardbandResult)
        assert isinstance(cold, GuardbandResult)
        assert isinstance(hot, GuardbandResult)
        assert warm.warm_started and not cold.warm_started
        assert warm.iterations < cold.iterations
        assert cold.iterations == reference.iterations
        assert hot.iterations == looped[65.0].iterations
        # Every cell lands on its own fixed point within the margin.
        assert abs(warm.frequency_hz - reference.frequency_hz) <= _margin(
            reference
        )
        assert abs(cold.frequency_hz - reference.frequency_hz) <= max(
            _margin(reference), 1e-9
        )
        assert abs(hot.frequency_hz - looped[65.0].frequency_hz) <= max(
            _margin(looped[65.0]), 1e-9
        )

    def test_diverging_cell_does_not_poison_batch_mates(
        self, tiny_flow, fabric25, looped
    ):
        """With the budget set below the cold iteration count, the cold
        cell diverges while its warm-started batch-mate still converges
        and returns the correct fixed point."""
        reference = looped[25.0]
        assert reference.iterations >= 2, "fixture no longer exercises this"
        config = GuardbandConfig(max_iterations=reference.iterations - 1)
        outcomes = thermal_aware_guardband_batch(
            tiny_flow, fabric25,
            [
                BatchCell(25.0),
                BatchCell(25.0, warm_start=reference.tile_temperatures),
            ],
            config=config,
        )
        diverged, converged = outcomes
        assert isinstance(diverged, GuardbandError)
        assert isinstance(converged, GuardbandResult)
        assert "did not converge" in str(diverged)
        assert abs(converged.frequency_hz - reference.frequency_hz) <= _margin(
            reference
        )

    def test_diverged_cell_carries_diagnostics(
        self, tiny_flow, fabric25, looped
    ):
        reference = looped[25.0]
        budget = reference.iterations - 1
        config = GuardbandConfig(max_iterations=budget)
        (outcome,) = thermal_aware_guardband_batch(
            tiny_flow, fabric25, [25.0], config=config
        )
        assert isinstance(outcome, GuardbandError)
        assert outcome.iterations == budget
        assert len(outcome.history) == budget
        assert outcome.t_ambient == 25.0
        assert outcome.last_temperatures is not None
        assert outcome.last_temperatures.shape == (tiny_flow.n_tiles,)
        assert outcome.last_max_delta_celsius is not None
        assert outcome.last_max_delta_celsius > config.delta_t

    def test_all_cells_diverge_like_looped_path(self, tiny_flow, fabric25):
        from repro.thermal.package import ThermalPackage

        weak = ThermalPackage(g_vertical_w_per_k=1e-6, g_lateral_w_per_k=1e-5)
        config = GuardbandConfig(delta_t=0.05, max_iterations=2, package=weak)
        outcomes = thermal_aware_guardband_batch(
            tiny_flow, fabric25, [25.0, 45.0], config=config
        )
        assert all(isinstance(o, GuardbandError) for o in outcomes)

    def test_warm_start_validation(self, tiny_flow, fabric25):
        with pytest.raises(ValueError, match="shape"):
            thermal_aware_guardband_batch(
                tiny_flow, fabric25,
                [BatchCell(25.0, warm_start=np.zeros(tiny_flow.n_tiles + 1))],
            )
        seed = np.full(tiny_flow.n_tiles, 30.0)
        seed[0] = np.nan
        with pytest.raises(ValueError, match="finite"):
            thermal_aware_guardband_batch(
                tiny_flow, fabric25, [BatchCell(25.0, warm_start=seed)]
            )


class TestLoopedErrorDiagnostics:
    def test_looped_raise_carries_partial_state(self, tiny_flow, fabric25):
        from repro.thermal.package import ThermalPackage

        weak = ThermalPackage(g_vertical_w_per_k=1e-6, g_lateral_w_per_k=1e-5)
        with pytest.raises(GuardbandError) as info:
            thermal_aware_guardband(
                tiny_flow, fabric25, 25.0,
                config=GuardbandConfig(
                    delta_t=0.05, max_iterations=2, package=weak
                ),
            )
        error = info.value
        assert error.iterations == 2
        assert len(error.history) == 2
        assert error.t_ambient == 25.0
        assert error.last_temperatures is not None
        assert error.last_temperatures.shape == (tiny_flow.n_tiles,)
        assert error.last_max_delta_celsius == pytest.approx(
            error.history[-1].max_delta_celsius
        )

    def test_bare_message_still_constructs(self):
        error = GuardbandError("nope")
        assert error.history == []
        assert error.last_temperatures is None
        assert error.iterations == 0
        assert error.last_max_delta_celsius is None


class TestBatchedPowerModel:
    @pytest.fixture(scope="class")
    def model(self, tiny_flow, fabric25):
        from repro.activity.ace import estimate_activity
        from repro.power.model import PowerModel

        activity = estimate_activity(tiny_flow.netlist, 0.2)
        return PowerModel(tiny_flow, fabric25, activity)

    def test_leakage_batch_bitwise_matches_rows(self, model, tiny_flow):
        rng = np.random.default_rng(3)
        t_batch = 25.0 + 40.0 * rng.random((5, tiny_flow.n_tiles))
        batched = model.leakage_power_batch(t_batch)
        for c in range(5):
            np.testing.assert_array_equal(
                batched[c], model.leakage_power(t_batch[c])
            )

    def test_dynamic_batch_matches_rows(self, model):
        freqs = np.array([1e8, 3e8, 7.5e8])
        batched = model.dynamic_power_batch(freqs)
        for c, f in enumerate(freqs):
            np.testing.assert_allclose(
                batched[c], model.dynamic_power(float(f)), rtol=1e-12
            )

    def test_dynamic_batch_rejects_bad_input(self, model):
        with pytest.raises(ValueError, match="1-D"):
            model.dynamic_power_batch(np.ones((2, 2)))
        with pytest.raises(ValueError, match="negative"):
            model.dynamic_power_batch(np.array([1e8, -1.0]))

    def test_evaluate_batch_shape_checks(self, model, tiny_flow):
        with pytest.raises(ValueError, match="match"):
            model.evaluate_batch(
                np.array([1e8]), np.full((2, tiny_flow.n_tiles), 25.0)
            )
        with pytest.raises(ValueError, match="batch shape"):
            model.evaluate_batch(
                np.array([1e8, 2e8]), np.full((2, 3), 25.0)
            )

    def test_breakdown_totals_cached(self, model, tiny_flow):
        breakdown = model.evaluate(2e8, np.full(tiny_flow.n_tiles, 30.0))
        assert breakdown.total_w is breakdown.total_w
        np.testing.assert_array_equal(
            breakdown.total_w, breakdown.dynamic_w + breakdown.leakage_w
        )
        assert breakdown.total_watts == breakdown.total_watts
        assert breakdown.total_watts == float(breakdown.total_w.sum())

    def test_caches_do_not_leak_between_breakdowns(self, model, tiny_flow):
        cool = model.evaluate(2e8, np.full(tiny_flow.n_tiles, 25.0))
        hot = model.evaluate(2e8, np.full(tiny_flow.n_tiles, 80.0))
        assert cool.total_watts < hot.total_watts
        assert cool.total_w is not hot.total_w

    def test_per_cell_totals(self, model, tiny_flow):
        t_batch = np.full((3, tiny_flow.n_tiles), 30.0)
        freqs = np.array([1e8, 2e8, 3e8])
        breakdown = model.evaluate_batch(freqs, t_batch)
        per_cell = breakdown.total_watts_per_cell()
        assert per_cell.shape == (3,)
        assert breakdown.total_watts == pytest.approx(per_cell.sum())
        single = model.evaluate(2e8, t_batch[1])
        assert per_cell[1] == pytest.approx(single.total_watts, rel=1e-12)

    def test_per_cell_totals_reject_single(self, model, tiny_flow):
        single = model.evaluate(2e8, np.full(tiny_flow.n_tiles, 30.0))
        with pytest.raises(ValueError, match="batched"):
            single.total_watts_per_cell()

    def test_iteration_telemetry_bit_identical_across_runs(
        self, tiny_flow, fabric25
    ):
        """Regression for the total-power caching: the looped path's
        per-iteration telemetry must stay deterministic bit for bit."""
        first = thermal_aware_guardband(tiny_flow, fabric25, t_ambient=25.0)
        second = thermal_aware_guardband(tiny_flow, fabric25, t_ambient=25.0)
        assert first.frequency_hz == second.frequency_hz
        assert first.total_power_w == second.total_power_w
        assert len(first.history) == len(second.history)
        for a, b in zip(first.history, second.history):
            assert a.frequency_hz == b.frequency_hz
            assert a.total_power_w == b.total_power_w
            assert a.max_tile_celsius == b.max_tile_celsius
            assert a.mean_tile_celsius == b.mean_tile_celsius
            assert a.max_delta_celsius == b.max_delta_celsius


def _batch_spec(**overrides) -> ExperimentSpec:
    defaults = dict(
        benchmarks=(BATCH_A, BATCH_B), ambients=(15.0, 30.0, 45.0)
    )
    defaults.update(overrides)
    return ExperimentSpec(**defaults)


class TestBatchedSweep:
    def test_groups_same_flow_cells(self):
        jobs = _batch_spec().expand()
        units = engine_module._batch_units(jobs)
        # One unit per (benchmark, corner) pair, holding every ambient.
        assert [len(unit) for unit in units] == [3, 3]
        for unit in units:
            assert len({job.benchmark for job in unit}) == 1
            assert len({job.t_ambient for job in unit}) == 3

    def test_different_corners_not_grouped(self):
        jobs = _batch_spec(corners=(25.0, 70.0)).expand()
        units = engine_module._batch_units(jobs)
        for unit in units:
            assert len({(job.benchmark, job.corner) for job in unit}) == 1

    def test_batched_matches_looped_sweep(self, cache_dir):
        spec = _batch_spec()
        loop = run_sweep(spec, workers=1)
        batch = run_sweep(spec, workers=1, batch=True)
        assert loop.ok and batch.ok
        assert [r.job_id for r in batch.results] == [
            r.job_id for r in loop.results
        ]
        for a, b in zip(loop.results, batch.results):
            # Tolerance-identical (DESIGN.md §12); in practice the batch
            # numerics only differ in BLAS summation order.
            assert b.frequency_hz == pytest.approx(a.frequency_hz, rel=1e-9)
            assert b.iterations == a.iterations
            assert b.worst_case_hz == a.worst_case_hz

    def test_parallel_batched_matches_serial_batched(self, cache_dir):
        spec = _batch_spec()
        serial = run_sweep(spec, workers=1, batch=True)
        parallel = run_sweep(spec, workers=2, batch=True)
        assert serial.ok and parallel.ok
        assert parallel.frequencies() == serial.frequencies()

    def test_per_cell_records_and_store_writes(self, cache_dir, tmp_path):
        spec = _batch_spec()
        store_root = tmp_path / "store"
        jsonl = tmp_path / "sweep.jsonl"
        sink = InMemorySink()
        with observe.enabled(sink=sink):
            sweep = run_sweep(
                spec, workers=1, batch=True,
                store=str(store_root), jsonl_path=str(jsonl),
            )
        assert sweep.ok
        # One JSONL line and one sweep.cell span per cell, not per batch.
        lines = [l for l in jsonl.read_text().splitlines() if l.strip()]
        assert len(lines) == spec.n_jobs
        cells = [s for s in sink.spans() if s["name"] == "sweep.cell"]
        assert len(cells) == spec.n_jobs
        # One store entry per cell.
        assert len(open_store(store_root).digests()) == spec.n_jobs
        assert sweep.store_totals() == {"hit": 0, "miss": spec.n_jobs}

    def test_store_hits_served_per_cell(self, cache_dir, tmp_path):
        spec = _batch_spec()
        store_root = str(tmp_path / "store")
        first = run_sweep(spec, workers=1, batch=True, store=store_root)
        again = run_sweep(spec, workers=1, batch=True, store=store_root)
        assert first.ok and again.ok
        assert again.store_totals() == {"hit": spec.n_jobs, "miss": 0}
        assert again.frequencies() == first.frequencies()
        assert all(r.phase_seconds == {} for r in again.results)

    def test_partial_store_hits_batch_only_remainder(
        self, cache_dir, tmp_path
    ):
        spec = _batch_spec(benchmarks=(BATCH_A,))
        store_root = str(tmp_path / "store")
        # Pre-populate exactly one cell through the looped path.
        one = ExperimentSpec(benchmarks=(BATCH_A,), ambients=(30.0,))
        assert run_sweep(one, workers=1, store=store_root).ok
        sweep = run_sweep(spec, workers=1, batch=True, store=store_root)
        assert sweep.ok
        assert sweep.store_totals() == {"hit": 1, "miss": spec.n_jobs - 1}
        hit = sweep.result_for(BATCH_A.name, 30.0, 25.0)
        assert hit is not None and hit.store_event == "hit"

    def test_resume_skips_batched_cells(self, cache_dir, tmp_path):
        spec = _batch_spec()
        jsonl = tmp_path / "sweep.jsonl"
        first = run_sweep(spec, workers=1, batch=True, jsonl_path=str(jsonl))
        assert first.ok
        resumed = run_sweep(
            spec, workers=1, batch=True, resume_from=str(jsonl),
        )
        assert resumed.ok and resumed.n_resumed == spec.n_jobs
        assert resumed.frequencies() == first.frequencies()

    def test_diverged_cell_recorded_with_diagnostics(self, cache_dir):
        # A one-iteration budget with a tight threshold: every cell
        # diverges, and each failure record carries the partial state.
        spec = _batch_spec(
            benchmarks=(BATCH_A,),
            config=GuardbandConfig(delta_t=0.01, max_iterations=1),
        )
        sweep = run_sweep(spec, workers=1, batch=True)
        assert len(sweep.failures) == spec.n_jobs
        for failure in sweep.failures:
            assert failure.error_type == "GuardbandError"
            assert failure.diagnostics["iterations"] == 1
            assert failure.diagnostics["last_max_delta_celsius"] > 0.01

    def test_looped_failure_records_diagnostics_in_jsonl(
        self, cache_dir, tmp_path
    ):
        spec = ExperimentSpec(
            benchmarks=(BATCH_A,), ambients=(25.0,),
            config=GuardbandConfig(delta_t=0.01, max_iterations=1),
        )
        jsonl = tmp_path / "sweep.jsonl"
        sweep = run_sweep(spec, workers=1, jsonl_path=str(jsonl))
        assert len(sweep.failures) == 1
        import json

        (record,) = [
            json.loads(line)
            for line in jsonl.read_text().splitlines()
            if line.strip()
        ]
        assert record["type"] == "failure"
        assert record["diagnostics"]["iterations"] == 1
        assert record["diagnostics"]["last_max_delta_celsius"] > 0.01

    def test_mixed_success_and_failure_in_one_batch(self, cache_dir, tmp_path):
        """Per-cell isolation end-to-end: one batched work unit records
        JobResults and JobFailures side by side — a store-served cell
        succeeds while its batch-mates exhaust a one-iteration budget."""
        tight = GuardbandConfig(delta_t=0.01, max_iterations=1)
        store_root = str(tmp_path / "store")
        # Converge one cell outside the budget constraint and persist it
        # under the digest the tight-config sweep will look up.
        from repro.cad.flow import run_flow

        (job,) = ExperimentSpec(
            benchmarks=(BATCH_A,), ambients=(30.0,), config=tight
        ).expand()
        flow = run_flow(job.resolve_netlist(), job.arch, seed=job.seed)
        converged = thermal_aware_guardband(
            flow, engine_module._fabric_for(job.corner, job.arch),
            t_ambient=30.0,
        )
        store = open_store(store_root)
        store.put(
            store_digest(flow.cache_key, tight, 30.0, job.corner), converged
        )
        sweep = run_sweep(
            _batch_spec(benchmarks=(BATCH_A,), config=tight),
            workers=1, batch=True, store=store_root,
        )
        assert [r.t_ambient for r in sweep.results] == [30.0]
        assert sweep.results[0].store_event == "hit"
        assert {f.t_ambient for f in sweep.failures} == {15.0, 45.0}
        assert all(
            f.error_type == "GuardbandError" for f in sweep.failures
        )


class TestWarmStartMissObservability:
    def _job(self, spec=BATCH_A, **overrides):
        defaults = dict(
            benchmarks=(spec,), ambients=(40.0,),
            config=GuardbandConfig(warm_start_policy="nearest"),
        )
        defaults.update(overrides)
        (job,) = ExperimentSpec(**defaults).expand()
        return job

    def test_quarantined_neighbour_counts_as_miss(self, cache_dir, tmp_path):
        from dataclasses import replace

        from repro.cad.flow import run_flow

        job = self._job()
        flow = run_flow(job.resolve_netlist(), job.arch, seed=job.seed)
        store = open_store(tmp_path / "store")
        digest = store_digest(flow.cache_key, job.config, 25.0, job.corner)
        # A neighbour entry exists on disk but is unreadable.
        store.put(
            digest,
            thermal_aware_guardband(
                flow, engine_module._fabric_for(job.corner, job.arch),
                t_ambient=25.0, config=job.config,
            ),
        )
        store.path_for(digest).write_bytes(b"torn garbage")
        job = replace(job, warm_start_cells=((25.0, job.corner),))
        sink = InMemorySink()
        with observe.enabled(sink=sink):
            seed_vec = engine_module._warm_start_vector(store, flow, job)
        assert seed_vec is None
        events = [
            e for e in sink.events() if e["name"] == "store.warm_start_miss"
        ]
        assert len(events) == 1
        assert events[0]["attrs"]["reason"] == "quarantined"
        misses = [
            m for m in sink.metrics() if m["name"] == "store.warm_start_miss"
        ]
        assert misses and misses[-1]["value"] == 1

    def test_layout_mismatch_counts_as_miss(self, cache_dir, tmp_path):
        from dataclasses import replace as dc_replace

        from repro.cad.flow import run_flow

        job = self._job()
        flow = run_flow(job.resolve_netlist(), job.arch, seed=job.seed)
        fabric = engine_module._fabric_for(job.corner, job.arch)
        good = thermal_aware_guardband(
            flow, fabric, t_ambient=25.0, config=job.config
        )
        mangled = dc_replace(
            good, tile_temperatures=np.append(good.tile_temperatures, 25.0)
        )
        store = open_store(tmp_path / "store")
        digest = store_digest(flow.cache_key, job.config, 25.0, job.corner)
        store.put(digest, mangled)
        job = dc_replace(job, warm_start_cells=((25.0, job.corner),))
        sink = InMemorySink()
        with observe.enabled(sink=sink):
            seed_vec = engine_module._warm_start_vector(store, flow, job)
        assert seed_vec is None
        events = [
            e for e in sink.events() if e["name"] == "store.warm_start_miss"
        ]
        assert len(events) == 1
        assert events[0]["attrs"]["reason"] == "layout_mismatch"

    def test_absent_neighbour_is_silent(self, cache_dir, tmp_path):
        from dataclasses import replace as dc_replace

        from repro.cad.flow import run_flow

        job = self._job()
        flow = run_flow(job.resolve_netlist(), job.arch, seed=job.seed)
        store = open_store(tmp_path / "store")
        job = dc_replace(job, warm_start_cells=((25.0, job.corner),))
        sink = InMemorySink()
        with observe.enabled(sink=sink):
            seed_vec = engine_module._warm_start_vector(store, flow, job)
        assert seed_vec is None
        assert [
            e for e in sink.events() if e["name"] == "store.warm_start_miss"
        ] == []

    def test_usable_neighbour_still_seeds(self, cache_dir, tmp_path):
        from dataclasses import replace as dc_replace

        from repro.cad.flow import run_flow

        job = self._job()
        flow = run_flow(job.resolve_netlist(), job.arch, seed=job.seed)
        fabric = engine_module._fabric_for(job.corner, job.arch)
        good = thermal_aware_guardband(
            flow, fabric, t_ambient=25.0, config=job.config
        )
        store = open_store(tmp_path / "store")
        digest = store_digest(flow.cache_key, job.config, 25.0, job.corner)
        store.put(digest, good)
        job = dc_replace(job, warm_start_cells=((25.0, job.corner),))
        seed_vec = engine_module._warm_start_vector(store, flow, job)
        assert seed_vec is not None
        np.testing.assert_allclose(
            seed_vec, good.tile_temperatures - 25.0 + job.t_ambient
        )


class TestBatchedJobRouting:
    def test_single_cell_units_route_through_execute_job(
        self, cache_dir, monkeypatch
    ):
        """Monkeypatched ``_execute_job`` still intercepts unbatched
        sweeps (and batch=True sweeps whose groups are singletons)."""
        seen = []

        def fake(job, store=None):
            seen.append(job.job_id)
            return JobResult(
                job_id=job.job_id, benchmark=job.benchmark,
                t_ambient=job.t_ambient, corner=job.corner,
                frequency_hz=1e9, worst_case_hz=5e8, gain=1.0,
                iterations=1, total_power_w=1.0, max_tile_celsius=50.0,
                mean_tile_celsius=40.0, wall_seconds=0.0,
            )

        monkeypatch.setattr(engine_module, "_execute_job", fake)
        spec = ExperimentSpec(
            benchmarks=(BATCH_A, BATCH_B), ambients=(25.0,)
        )
        sweep = run_sweep(spec, workers=1, batch=True)
        assert sweep.ok
        assert sorted(seen) == sorted(j.job_id for j in spec.expand())

    def test_batch_failure_falls_back_per_job(self, cache_dir, monkeypatch):
        """A unit-level crash (not a per-cell divergence) records one
        failure per member cell."""

        def boom(jobs, store=None):
            raise RuntimeError("batch infrastructure crashed")

        monkeypatch.setattr(engine_module, "_execute_batch", boom)
        spec = _batch_spec(benchmarks=(BATCH_A,))
        sweep = run_sweep(spec, workers=1, batch=True)
        assert len(sweep.failures) == spec.n_jobs
        assert all(
            f.error_type == "RuntimeError" for f in sweep.failures
        )
        assert {f.job_id for f in sweep.failures} == {
            j.job_id for j in spec.expand()
        }
