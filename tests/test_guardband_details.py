"""Deeper Algorithm 1 behaviour: fixed-point structure and telemetry."""

import numpy as np
import pytest

from repro.activity.ace import estimate_activity
from repro.core.guardband import GuardbandConfig, thermal_aware_guardband
from repro.power.model import PowerModel
from repro.thermal.hotspot import ThermalSolver


class TestFixedPoint:
    def test_converged_profile_is_self_consistent(self, tiny_flow, fabric25):
        """At convergence, re-running one more iteration moves every tile by
        at most delta_t — the fixed-point contract of Algorithm 1."""
        result = thermal_aware_guardband(tiny_flow, fabric25, 25.0)
        activity = estimate_activity(tiny_flow.netlist, 0.15)
        model = PowerModel(tiny_flow, fabric25, activity)
        solver = ThermalSolver(tiny_flow.layout)
        report = tiny_flow.timing.critical_path(
            fabric25, result.tile_temperatures
        )
        power = model.evaluate(report.frequency_hz, result.tile_temperatures)
        t_next = solver.solve(power.total_w, 25.0)
        assert float(np.max(np.abs(t_next - result.tile_temperatures))) <= (
            result.delta_t + 1e-9
        )

    def test_frequency_accounts_for_margin(self, tiny_flow, fabric25):
        result = thermal_aware_guardband(tiny_flow, fabric25, 25.0)
        retimed = tiny_flow.timing.critical_path(
            fabric25, result.tile_temperatures + result.delta_t
        )
        assert result.frequency_hz == pytest.approx(retimed.frequency_hz)

    def test_power_monotone_along_iterations(self, tiny_flow, fabric25):
        """Leakage grows with temperature, so total power must not drop as
        the temperature estimate rises across iterations."""
        result = thermal_aware_guardband(tiny_flow, fabric25, 25.0)
        powers = [step.total_power_w for step in result.history]
        temps = [step.mean_tile_celsius for step in result.history]
        for (p1, t1), (p2, t2) in zip(
            zip(powers, temps), zip(powers[1:], temps[1:])
        ):
            if t2 >= t1:
                # Frequency also changes, but at these operating points the
                # leakage increase dominates any frequency reduction.
                assert p2 >= p1 * 0.97

    def test_deltas_shrink(self, tiny_flow, fabric25):
        result = thermal_aware_guardband(tiny_flow, fabric25, 25.0)
        deltas = [step.max_delta_celsius for step in result.history]
        assert deltas == sorted(deltas, reverse=True)

    def test_explicit_activity_object_honoured(self, tiny_flow, fabric25):
        lazy = estimate_activity(tiny_flow.netlist, 0.05)
        busy = estimate_activity(tiny_flow.netlist, 0.50)
        r_lazy = thermal_aware_guardband(tiny_flow, fabric25, 25.0, activity=lazy)
        r_busy = thermal_aware_guardband(tiny_flow, fabric25, 25.0, activity=busy)
        assert r_busy.total_power_w > r_lazy.total_power_w

    def test_result_metadata(self, tiny_flow, fabric25):
        result = thermal_aware_guardband(
            tiny_flow, fabric25, 40.0, config=GuardbandConfig(delta_t=3.0)
        )
        assert result.t_ambient == 40.0
        assert result.delta_t == 3.0
        assert result.critical_path_s == pytest.approx(1.0 / result.frequency_hz)
        assert len(result.tile_temperatures) == tiny_flow.n_tiles


class TestAmbientSweep:
    def test_gain_monotone_in_ambient(self, tiny_flow, fabric25):
        """Cooler ambients always leave more recoverable margin."""
        freqs = [
            thermal_aware_guardband(tiny_flow, fabric25, t).frequency_hz
            for t in (10.0, 25.0, 40.0, 55.0, 70.0, 85.0)
        ]
        assert freqs == sorted(freqs, reverse=True)

    def test_ambient_at_tworst_still_safe(self, tiny_flow, fabric25):
        """Even at a 95 C ambient the flow produces a valid (slow) clock."""
        from repro.core.margins import worst_case_frequency

        result = thermal_aware_guardband(tiny_flow, fabric25, 95.0)
        # Self-heating pushes past Tworst; the guardbanded clock must then
        # be at or below the 100 C baseline (clamped characterization).
        assert result.frequency_hz <= worst_case_frequency(
            tiny_flow, fabric25
        ) * 1.05
