"""Tests for the ASCII heatmap rendering."""

import numpy as np
import pytest

from repro.arch.layout import FabricLayout
from repro.arch.params import ArchParams
from repro.reporting.heatmap import (
    SHADES,
    format_density_map,
    format_heatmap,
    format_heatmap_pair,
)


@pytest.fixture(scope="module")
def layout():
    return FabricLayout(ArchParams(), 6, 6)


class TestHeatmap:
    def test_dimensions(self, layout):
        values = np.zeros(layout.n_tiles)
        text = format_heatmap(layout, values, title="t")
        lines = text.splitlines()
        assert len(lines) == layout.height + 2  # title + rows + legend
        assert all(len(line) == layout.width for line in lines[1:-1])

    def test_peak_uses_hottest_shade(self, layout):
        values = np.zeros(layout.n_tiles)
        values[layout.tile_index(2, 3)] = 10.0
        text = format_heatmap(layout, values)
        grid_rows = text.splitlines()[:-1]
        # Row 0 is printed at the bottom.
        row = grid_rows[layout.height - 1 - 3]
        assert row[2] == SHADES[-1]

    def test_uniform_field_renders(self, layout):
        values = np.full(layout.n_tiles, 25.0)
        text = format_heatmap(layout, values)
        assert "25.00" in text

    def test_explicit_scale(self, layout):
        values = np.full(layout.n_tiles, 50.0)
        text = format_heatmap(layout, values, v_min=0.0, v_max=100.0)
        body = "".join(text.splitlines()[:-1])
        # 50 % of the scale lands mid-palette.
        assert set(body) == {SHADES[len(SHADES) // 2]}

    def test_rejects_wrong_shape(self, layout):
        with pytest.raises(ValueError):
            format_heatmap(layout, np.zeros(3))


class TestHeatmapPair:
    def test_side_by_side_layout(self, layout):
        left = np.zeros(layout.n_tiles)
        right = np.zeros(layout.n_tiles)
        text = format_heatmap_pair(layout, left, right, "a", "b")
        lines = text.splitlines()
        assert len(lines) == layout.height + 2  # title + rows + legend
        assert lines[0].startswith("a")
        assert lines[0].rstrip().endswith("b")

    def test_shared_scale(self, layout):
        """The hotter map's peak sets the scale for both sides."""
        left = np.zeros(layout.n_tiles)
        left[layout.tile_index(1, 1)] = 50.0
        right = np.zeros(layout.n_tiles)
        right[layout.tile_index(2, 2)] = 100.0
        text = format_heatmap_pair(layout, left, right)
        row = text.splitlines()[1:-1][layout.height - 1 - 1]
        # Left's 50-of-100 peak renders mid-palette, not saturated:
        # both maps share [0, 100].
        assert row[1] == SHADES[len(SHADES) // 2]
        assert "100.00" in text

    def test_rejects_wrong_shape(self, layout):
        with pytest.raises(ValueError):
            format_heatmap_pair(layout, np.zeros(3), np.zeros(layout.n_tiles))


class TestDensityMap:
    def test_renders_relative_units(self, layout):
        density = np.linspace(0.0, 1.0, layout.n_tiles)
        text = format_density_map(layout, density)
        assert "power density" in text
        assert "(rel)" in text
        assert len(text.splitlines()) == layout.height + 2
