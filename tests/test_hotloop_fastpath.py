"""Regressions and equivalence tests for the vectorized Algorithm 1 hot loop.

Covers the hot-loop bugfixes (guardband iteration validation, timing error
messages, temperature normalization, RR-graph edge diagnostics) and asserts
the vectorized STA / pre-factorized thermal / matrix-product power paths
reproduce the seed implementation bit-for-bit (within 1e-9 relative
tolerance) — including end-to-end guardband frequencies on three VTR
netlists.
"""

from __future__ import annotations

import copy

import numpy as np
import pytest

from repro import observe, profiling
from repro.activity.ace import estimate_activity
from repro.cad.flow import run_flow
from repro.cad.timing import TimingAnalyzer
from repro.core.guardband import (
    GuardbandConfig,
    GuardbandError,
    thermal_aware_guardband,
)
from repro.core.reference import seed_implementation
from repro.netlists.vtr_suite import vtr_benchmark
from repro.power.model import PowerModel
from repro.thermal.hotspot import ThermalSolver

EQUIVALENCE_NETLISTS = ("sha", "mkSMAdapter4B", "stereovision3")


@pytest.fixture(scope="module")
def vtr_flows(arch):
    return {
        name: run_flow(vtr_benchmark(name), arch)
        for name in EQUIVALENCE_NETLISTS
    }


# -- satellite bugfix regressions ---------------------------------------------


class TestGuardbandIterationValidation:
    @pytest.mark.parametrize("max_iterations", [0, -1, -25])
    def test_non_positive_max_iterations_rejected(
        self, tiny_flow, fabric25, max_iterations
    ):
        with pytest.raises(ValueError, match="max_iterations must be at least 1"):
            thermal_aware_guardband(
                tiny_flow, fabric25, t_ambient=25.0,
                config=GuardbandConfig(max_iterations=max_iterations),
            )

    def test_non_convergence_message_reports_last_delta(self, tiny_flow, fabric25):
        # One iteration with a microscopic threshold cannot converge; the
        # error must still carry the last |dT| (history is non-empty).
        with pytest.raises(GuardbandError, match=r"last \|dT\|"):
            thermal_aware_guardband(
                tiny_flow, fabric25, t_ambient=25.0,
                config=GuardbandConfig(delta_t=1e-9, max_iterations=1),
            )


class TestTimingErrorMessages:
    def test_non_positive_critical_path_message(
        self, tiny_flow, fabric25, uniform_25, monkeypatch
    ):
        timing = tiny_flow.timing
        n = timing.packed.netlist.n_blocks
        zeros = (
            np.zeros(n),
            np.full(n, -1, dtype=int),
            {0: 0.0},
        )
        monkeypatch.setattr(
            TimingAnalyzer,
            "_arrival_pass",
            lambda self, f, t, delay_scale=None: zeros,
        )
        with pytest.raises(ValueError, match="non-positive critical-path delay"):
            timing.critical_path(fabric25, uniform_25)

    def test_resource_mix_validates_temperature_length(self, tiny_flow, fabric25):
        bad = np.full(tiny_flow.n_tiles + 3, 25.0)
        with pytest.raises(ValueError, match="tiles"):
            tiny_flow.timing.critical_path_resource_mix(fabric25, bad)

    def test_resource_mix_scalar_broadcast_still_works(self, tiny_flow, fabric25):
        mix = tiny_flow.timing.critical_path_resource_mix(fabric25, 25.0)
        assert mix
        assert abs(sum(mix.values()) - 1.0) < 1e-9

    def test_missing_rr_edge_names_the_net(self, tiny_flow):
        routing = copy.deepcopy(tiny_flow.routing)
        # Sever the first hop of some routed net's sink path in the copy.
        cut = None
        for net_id, route in sorted(routing.routes.items()):
            for path in route.sink_paths.values():
                if len(path) >= 2:
                    cut = (path[0], path[1])
                    break
            if cut:
                break
        assert cut is not None, "expected at least one routed net"
        u, v = cut
        routing.graph.out_edges[u] = [
            e for e in routing.graph.out_edges[u] if e.dst != v
        ]
        with pytest.raises(
            ValueError, match=r"net \d+ .* does not exist in the RR graph"
        ):
            TimingAnalyzer(
                tiny_flow.packed, tiny_flow.placement, routing, tiny_flow.layout
            )

    def test_disconnected_route_tree_names_the_net(self, tiny_flow):
        routing = copy.deepcopy(tiny_flow.routing)
        # Point some route at a bogus source: every chain walk then runs
        # past the real source and off the end of the parent map.
        corrupted = False
        for net_id, route in sorted(routing.routes.items()):
            if route.sink_paths:
                route.source_node = 10**9
                corrupted = True
                break
        assert corrupted, "expected at least one routed net"
        with pytest.raises(
            ValueError, match=r"net \d+ .* disconnected at node"
        ):
            TimingAnalyzer(
                tiny_flow.packed, tiny_flow.placement, routing, tiny_flow.layout
            )


# -- fast-path equivalence ----------------------------------------------------


class TestArrivalPassEquivalence:
    def test_matches_reference_on_random_profiles(self, tiny_flow, fabric25):
        timing = tiny_flow.timing
        rng = np.random.default_rng(7)
        for _ in range(3):
            t_tiles = 25.0 + 40.0 * rng.random(tiny_flow.n_tiles)
            arr_f, pred_f, ends_f = timing._arrival_pass(fabric25, t_tiles)
            arr_r, pred_r, ends_r = timing._arrival_pass_reference(
                fabric25, t_tiles
            )
            np.testing.assert_allclose(arr_f, arr_r, rtol=1e-12, atol=0.0)
            np.testing.assert_array_equal(pred_f, pred_r)
            assert set(ends_f) == set(ends_r)
            for endpoint, delay in ends_r.items():
                assert ends_f[endpoint] == pytest.approx(delay, rel=1e-12)

    def test_critical_path_matches_seed_mode(self, tiny_flow, fabric25, uniform_25):
        fast = tiny_flow.timing.critical_path(fabric25, uniform_25)
        with seed_implementation():
            seed = tiny_flow.timing.critical_path(fabric25, uniform_25)
        assert fast.critical_path_s == pytest.approx(seed.critical_path_s, rel=1e-12)
        assert fast.critical_endpoint == seed.critical_endpoint
        assert fast.critical_blocks == seed.critical_blocks


class TestThermalSolverEquivalence:
    def test_factorized_matches_spsolve(self, tiny_flow):
        solver = ThermalSolver(tiny_flow.layout)
        rng = np.random.default_rng(3)
        power = rng.random(tiny_flow.n_tiles) * 0.02
        fast = solver.solve(power, 25.0)
        seed = solver.solve_unfactored(power, 25.0)
        np.testing.assert_allclose(fast, seed, rtol=1e-9)

    def test_factorization_happens_once_at_construction(self, tiny_flow):
        solver = ThermalSolver(tiny_flow.layout)
        assert solver._factor is not None

    def test_validation_still_applies(self, tiny_flow):
        solver = ThermalSolver(tiny_flow.layout)
        with pytest.raises(ValueError, match="negative tile power"):
            solver.solve(np.full(tiny_flow.n_tiles, -1.0), 25.0)


class TestPowerModelEquivalence:
    @pytest.fixture(scope="class")
    def model(self, tiny_flow, fabric25):
        activity = estimate_activity(tiny_flow.netlist, 0.2)
        return PowerModel(tiny_flow, fabric25, activity)

    def test_dynamic_power_matches_reference(self, model):
        for f_hz in (0.0, 1e8, 3.7e8):
            np.testing.assert_allclose(
                model.dynamic_power(f_hz),
                model.dynamic_power_reference(f_hz),
                rtol=1e-9,
            )

    def test_leakage_power_matches_reference(self, model, tiny_flow):
        rng = np.random.default_rng(11)
        t_tiles = 25.0 + 50.0 * rng.random(tiny_flow.n_tiles)
        np.testing.assert_allclose(
            model.leakage_power(t_tiles),
            model.leakage_power_reference(t_tiles),
            rtol=1e-9,
        )

    def test_negative_frequency_rejected(self, model):
        with pytest.raises(ValueError, match="negative frequency"):
            model.dynamic_power(-1.0)


class TestGuardbandEquivalence:
    def test_vtr_guardband_frequencies_match_seed(self, vtr_flows, fabric25):
        for name, flow in vtr_flows.items():
            fast = thermal_aware_guardband(flow, fabric25, t_ambient=25.0)
            with seed_implementation():
                seed = thermal_aware_guardband(flow, fabric25, t_ambient=25.0)
            assert fast.iterations == seed.iterations, name
            assert fast.frequency_hz == pytest.approx(
                seed.frequency_hz, rel=1e-9
            ), name
            np.testing.assert_allclose(
                fast.tile_temperatures, seed.tile_temperatures, rtol=1e-9
            )


# -- phase timing (repro.observe + the deprecated profiling shim) -------------


class TestPhaseTiming:
    def test_disabled_by_default(self, tiny_flow, fabric25):
        result = thermal_aware_guardband(tiny_flow, fabric25, t_ambient=25.0)
        assert all(it.phase_seconds is None for it in result.history)

    def test_enabled_records_phase_timings(self, tiny_flow, fabric25):
        with observe.enabled():
            result = thermal_aware_guardband(tiny_flow, fabric25, t_ambient=25.0)
        for iteration in result.history:
            assert set(iteration.phase_seconds) == {"sta", "power", "thermal"}
            assert all(v >= 0.0 for v in iteration.phase_seconds.values())

    def test_nesting_restores_disabled_state(self):
        assert not observe.is_enabled()
        with observe.enabled():
            assert observe.is_enabled()
            with observe.enabled():
                assert observe.is_enabled()
            assert observe.is_enabled()
        assert not observe.is_enabled()

    def test_profiling_shim_still_times_but_warns(self, tiny_flow, fabric25):
        with pytest.warns(DeprecationWarning, match="repro.profiling"):
            with profiling.enabled():
                assert profiling.is_enabled()
                assert observe.is_enabled()
                result = thermal_aware_guardband(
                    tiny_flow, fabric25, t_ambient=25.0
                )
        assert not profiling.is_enabled()
        for iteration in result.history:
            assert set(iteration.phase_seconds) == {"sta", "power", "thermal"}

    def test_profiling_iteration_timings_shapes(self):
        assert profiling.iteration_timings().as_dict() is None
        with observe.enabled():
            timings = profiling.iteration_timings()
            with timings.phase("sta"):
                pass
            assert set(timings.as_dict()) == {"sta"}
