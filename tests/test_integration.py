"""Integration tests: paper-shaped results end-to-end.

These exercise the full stack (characterization -> flow -> activity ->
power -> thermal -> Algorithm 1) on small designs and assert the *shapes*
of the paper's headline claims.
"""

import numpy as np
import pytest

from repro.api import (
    ArchParams,
    GuardbandConfig,
    NetlistSpec,
    build_fabric,
    generate_netlist,
    guardband_gain,
    run_flow,
    thermal_aware_guardband,
    vtr_benchmark,
    worst_case_frequency,
)
from repro.thermal.hotspot import xpe_cross_validation


@pytest.fixture(scope="module")
def sha_flow(arch):
    return run_flow(vtr_benchmark("sha"), arch)


class TestHeadlineClaims:
    def test_guardband_gain_at_25c_in_paper_band(self, sha_flow, fabric25):
        # Paper abstract: "thermal-aware timing on FPGAs yields up to 36.5 %
        # performance improvement" (Fig. 6 average) at Tamb = 25 C.
        result = thermal_aware_guardband(
            sha_flow, fabric25, 25.0,
            config=GuardbandConfig(base_activity=0.19),
        )
        gain = guardband_gain(
            result.frequency_hz, worst_case_frequency(sha_flow, fabric25)
        )
        assert 0.25 < gain < 0.50

    def test_guardband_gain_at_70c_smaller(self, sha_flow, fabric25):
        # Paper Fig. 7: ~14 % average at Tamb = 70 C.
        result = thermal_aware_guardband(
            sha_flow, fabric25, 70.0,
            config=GuardbandConfig(base_activity=0.19),
        )
        gain = guardband_gain(
            result.frequency_hz, worst_case_frequency(sha_flow, fabric25)
        )
        assert 0.04 < gain < 0.25

    def test_thermal_aware_architecture_helps_when_hot(self, sha_flow, arch,
                                                       fabric25, fabric70):
        # Paper Fig. 8: the 70 C-optimized device, guardbanded, beats the
        # typical (25 C) device at a hot ambient.
        hot = 70.0
        f25 = thermal_aware_guardband(sha_flow, fabric25, hot).frequency_hz
        f70 = thermal_aware_guardband(sha_flow, fabric70, hot).frequency_hz
        assert f70 > f25
        assert (f70 / f25 - 1.0) < 0.15  # single-digit-percent effect

    def test_dsp_heavy_design_gains_more(self, arch, fabric25):
        # Paper Fig. 1/6: DSP paths are the most temperature-sensitive, so
        # DSP-dominated designs enjoy larger thermal guardband recovery.
        soft = generate_netlist(
            NetlistSpec("soft_only", n_luts=30, depth=6, seed=21)
        )
        dsp = generate_netlist(
            NetlistSpec("dsp_heavy", n_luts=8, n_dsps=6, depth=2, seed=22)
        )
        gains = {}
        for netlist in (soft, dsp):
            flow = run_flow(netlist, arch)
            result = thermal_aware_guardband(flow, fabric25, 25.0)
            gains[netlist.name] = guardband_gain(
                result.frequency_hz, worst_case_frequency(flow, fabric25)
            )
        assert gains["dsp_heavy"] > gains["soft_only"]

    def test_critical_path_can_move_with_temperature(self, arch, fabric25):
        # Paper Sec. III-A: "the critical path might change at different
        # temperatures" — a DSP path overtakes a longer soft path when hot.
        netlist = generate_netlist(
            NetlistSpec("cp_swap", n_luts=40, n_dsps=3, depth=9, seed=33)
        )
        flow = run_flow(netlist, arch)
        cold = flow.timing.critical_path(fabric25, np.full(flow.n_tiles, 0.0))
        hot = flow.timing.critical_path(fabric25, np.full(flow.n_tiles, 100.0))
        # Not guaranteed for every seed, but this seed was chosen so the
        # endpoints differ; the invariant that matters is re-timing finds a
        # (possibly different) worst path, never a faster one.
        assert hot.critical_path_s > cold.critical_path_s

    def test_xpe_sensitivity_consistent_with_solver(self, sha_flow, fabric25):
        # Cross-validation hook of Sec. IV-A: our solver's average rise per
        # unit design/base power ratio should be the same order as the
        # XPE-style 0.7 C coefficient.
        result = thermal_aware_guardband(sha_flow, fabric25, 25.0)
        from repro.activity.ace import estimate_activity
        from repro.power.model import PowerModel

        model = PowerModel(sha_flow, fabric25, estimate_activity(sha_flow.netlist))
        base = model.leakage_power(np.full(sha_flow.n_tiles, 25.0)).sum()
        predicted = xpe_cross_validation(result.total_power_w, base)
        assert 0.1 * predicted < result.mean_rise_celsius < 10.0 * predicted


class TestFlowDeterminism:
    def test_same_inputs_same_frequency(self, arch, fabric25):
        netlist = vtr_benchmark("stereovision3")
        f1 = run_flow(netlist, arch, seed=5, use_cache=False)
        f2 = run_flow(netlist, arch, seed=5, use_cache=False)
        r1 = thermal_aware_guardband(f1, fabric25, 25.0)
        r2 = thermal_aware_guardband(f2, fabric25, 25.0)
        assert r1.frequency_hz == pytest.approx(r2.frequency_hz, rel=1e-12)
