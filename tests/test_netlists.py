"""Tests for the netlist representation, generator and VTR suite."""

import numpy as np
import pytest

from repro.netlists.generator import NetlistSpec, generate_netlist
from repro.netlists.netlist import Block, BlockType, Net, Netlist
from repro.netlists.vtr_suite import (
    VTR_BENCHMARKS,
    benchmark_names,
    vtr_benchmark,
)


class TestNetlistStructure:
    def test_add_and_connect(self):
        nl = Netlist("t")
        a = nl.add_block(BlockType.INPUT)
        b = nl.add_block(BlockType.LUT)
        net = nl.add_net(a)
        nl.connect(net, b)
        assert net.driver == a.id
        assert net.sinks == [b.id]
        assert b.input_nets == [net.id]
        nl.validate()

    def test_detects_combinational_cycle(self):
        nl = Netlist("cycle")
        l1 = nl.add_block(BlockType.LUT)
        l2 = nl.add_block(BlockType.LUT)
        n1 = nl.add_net(l1)
        n2 = nl.add_net(l2)
        nl.connect(n1, l2)
        nl.connect(n2, l1)
        with pytest.raises(ValueError, match="cycle"):
            nl.validate()

    def test_ff_breaks_cycle(self):
        nl = Netlist("reg-loop")
        lut = nl.add_block(BlockType.LUT)
        ff = nl.add_block(BlockType.FF)
        lut_out = nl.add_net(lut)
        nl.connect(lut_out, ff)
        ff_out = nl.add_net(ff)
        nl.connect(ff_out, lut)
        nl.validate()  # registered loop is fine

    def test_ff_single_input_enforced(self):
        nl = Netlist("bad-ff")
        a = nl.add_block(BlockType.INPUT)
        b = nl.add_block(BlockType.INPUT)
        ff = nl.add_block(BlockType.FF)
        nl.connect(nl.add_net(a), ff)
        nl.connect(nl.add_net(b), ff)
        with pytest.raises(ValueError, match="exactly 1 input"):
            nl.validate()

    def test_stats(self, tiny_netlist):
        stats = tiny_netlist.stats()
        assert stats["luts"] >= 24  # spec LUTs plus hard-block cones
        assert stats["brams"] == 1
        assert stats["dsps"] == 1
        assert stats["nets"] == tiny_netlist.n_nets


class TestGenerator:
    def test_deterministic(self, tiny_spec):
        a = generate_netlist(tiny_spec)
        b = generate_netlist(tiny_spec)
        assert a.stats() == b.stats()
        assert [n.sinks for n in a.nets] == [n.sinks for n in b.nets]

    def test_seed_changes_structure(self, tiny_spec):
        import dataclasses
        other = dataclasses.replace(tiny_spec, seed=tiny_spec.seed + 1)
        a = generate_netlist(tiny_spec)
        b = generate_netlist(other)
        assert [n.sinks for n in a.nets] != [n.sinks for n in b.nets]

    def test_every_net_driven_and_consumed(self, tiny_netlist):
        for net in tiny_netlist.nets:
            assert net.sinks, f"dangling net {net.name}"

    def test_lut_fanin_bounded(self, tiny_netlist):
        for block in tiny_netlist.blocks_of_type(BlockType.LUT):
            assert 1 <= len(block.input_nets) <= 6

    def test_depth_tracks_spec(self):
        shallow = generate_netlist(NetlistSpec("s", n_luts=60, depth=3, seed=3))
        deep = generate_netlist(NetlistSpec("d", n_luts=60, depth=12, seed=3))
        assert deep.logic_depth() > shallow.logic_depth()

    def test_rejects_bad_spec(self):
        with pytest.raises(ValueError):
            NetlistSpec("x", n_luts=0)
        with pytest.raises(ValueError):
            NetlistSpec("x", n_luts=10, ff_ratio=1.5)
        with pytest.raises(ValueError):
            NetlistSpec("x", n_luts=10, base_activity=0.0)

    def test_dsp_chains_exist(self):
        nl = generate_netlist(NetlistSpec("dspy", n_luts=20, n_dsps=4, seed=9))
        dsp_ids = {b.id for b in nl.blocks_of_type(BlockType.DSP)}
        chained = any(
            set(net.sinks) & dsp_ids
            for net in nl.nets
            if nl.blocks[net.driver].type == BlockType.DSP
        )
        assert chained


class TestVtrSuite:
    def test_nineteen_benchmarks(self):
        assert len(VTR_BENCHMARKS) == 19
        assert len(set(benchmark_names())) == 19

    def test_paper_order(self):
        names = benchmark_names()
        assert names[0] == "bgm"
        assert names[-1] == "stereovision3"

    def test_unknown_name_raises(self):
        with pytest.raises(KeyError, match="unknown VTR benchmark"):
            vtr_benchmark("quicksort")

    def test_cached(self):
        assert vtr_benchmark("sha") is vtr_benchmark("sha")

    def test_mix_character(self):
        specs = {s.name: s for s in VTR_BENCHMARKS}
        # DSP-heavy and BRAM-heavy benchmarks keep their published character.
        assert specs["stereovision2"].n_dsps > 20
        assert specs["mkPktMerge"].n_brams >= 3
        assert specs["sha"].n_brams == 0 and specs["sha"].n_dsps == 0
        assert specs["mcml"].n_luts == max(s.n_luts for s in VTR_BENCHMARKS)

    def test_scaled_sizes_tractable(self):
        for spec in VTR_BENCHMARKS:
            assert spec.n_luts <= 1000
