"""Tests for repro.observe — tracing, metrics, events, sinks and report.

Covers the span/session lifecycle (nesting, attrs, error status, the
zero-cost disabled path), the metrics registry and its null singletons,
both sinks, cross-process trace context (pickling, attach re-parenting,
fork-inherited-session guard), the JSONL trace loader/report CLI, and
the contract that enabling observability does not perturb guardband
numerics.
"""

from __future__ import annotations

import json
import pickle

import pytest

from repro import observe
from repro.core.guardband import thermal_aware_guardband
from repro.observe import report as report_module
from repro.observe.__main__ import main as observe_main
from repro.observe.context import TraceContext
from repro.observe.metrics import (
    NULL_COUNTER,
    NULL_GAUGE,
    NULL_HISTOGRAM,
    MetricsRegistry,
)
from repro.observe.runtime import _active
from repro.observe.sinks import InMemorySink, JsonlSink
from repro.observe.spans import NULL_SPAN


class TestSpans:
    def test_disabled_returns_shared_null_span(self):
        assert not observe.is_enabled()
        assert observe.span("anything", k=1) is NULL_SPAN
        with observe.span("x") as s:
            s.set_attrs(ignored=True)
        assert s.duration_s is None and s.span_id is None

    def test_span_measures_and_emits_at_exit(self):
        sink = InMemorySink()
        with observe.enabled(sink=sink):
            with observe.span("work", answer=42) as s:
                assert sink.spans() == []  # nothing emitted until exit
            assert s.duration_s is not None and s.duration_s >= 0.0
        (record,) = sink.spans()
        assert record["name"] == "work"
        assert record["status"] == "ok"
        assert record["parent_id"] is None
        assert record["attrs"] == {"answer": 42}
        assert isinstance(record["pid"], int)

    def test_nesting_links_parent_ids(self):
        sink = InMemorySink()
        with observe.enabled(sink=sink):
            with observe.span("outer") as outer:
                with observe.span("inner") as inner:
                    pass
        # Exit order: children are written before their parents.
        names = [r["name"] for r in sink.spans()]
        assert names == ["inner", "outer"]
        assert inner.parent_id == outer.span_id
        assert outer.parent_id is None
        assert inner.trace_id == outer.trace_id

    def test_exception_marks_error_status(self):
        sink = InMemorySink()
        with observe.enabled(sink=sink):
            with pytest.raises(ValueError):
                with observe.span("doomed"):
                    raise ValueError("boom")
        (record,) = sink.spans()
        assert record["status"] == "error"
        assert record["attrs"]["error_type"] == "ValueError"

    def test_set_attrs_after_enter(self):
        sink = InMemorySink()
        with observe.enabled(sink=sink):
            with observe.span("s", a=1) as s:
                s.set_attrs(b=2.5)
        assert sink.spans()[0]["attrs"] == {"a": 1, "b": 2.5}


class TestEnabled:
    def test_nesting_refcounts_one_session(self):
        sink = InMemorySink()
        with observe.enabled(sink=sink):
            session = _active()
            with observe.enabled():  # args ignored, same session
                assert _active() is session
                observe.counter("n").inc()
            assert observe.is_enabled()
        assert not observe.is_enabled()
        assert [r["name"] for r in sink.metrics()] == ["n"]

    def test_both_sink_args_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="not both"):
            with observe.enabled(
                sink=InMemorySink(), jsonl_path=str(tmp_path / "t.jsonl")
            ):
                pass

    def test_timing_only_session_has_no_records_but_measures(self):
        with observe.enabled():
            with observe.span("timed") as s:
                pass
            assert s.duration_s is not None
        assert observe.phase_seconds(x=s) == {"x": s.duration_s}

    def test_owned_jsonl_sink_closed_on_exit(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        with observe.enabled(jsonl_path=str(path)):
            with observe.span("a"):
                pass
        lines = path.read_text().splitlines()
        assert len(lines) == 1
        assert json.loads(lines[0])["name"] == "a"


class TestMetrics:
    def test_disabled_accessors_share_null_singletons(self):
        assert observe.counter("c") is NULL_COUNTER
        assert observe.gauge("g") is NULL_GAUGE
        assert observe.histogram("h") is NULL_HISTOGRAM
        NULL_COUNTER.inc(5)
        NULL_GAUGE.set(1.0)
        NULL_HISTOGRAM.observe(2.0)
        assert NULL_COUNTER.value == 0.0
        assert NULL_GAUGE.value is None
        assert NULL_HISTOGRAM.count == 0

    def test_live_instruments_accumulate(self):
        with observe.enabled(sink=InMemorySink()):
            observe.counter("hits").inc()
            observe.counter("hits").inc(2.0)
            observe.gauge("depth").set(3)
            observe.histogram("iters").observe(4.0)
            observe.histogram("iters").observe(6.0)
            assert observe.counter("hits").value == 3.0
            assert observe.gauge("depth").value == 3.0
            assert observe.histogram("iters").mean == 5.0

    def test_registry_records_only_written_instruments(self):
        registry = MetricsRegistry()
        registry.counter("touched").inc()
        registry.counter("untouched")
        registry.gauge("unset")
        registry.histogram("empty")
        registry.histogram("seen").observe(1.0)
        names = {r["name"] for r in registry.records()}
        assert names == {"touched", "seen"}

    def test_session_flushes_metrics_with_trace_id(self):
        sink = InMemorySink()
        with observe.enabled(sink=sink):
            observe.counter("solves").inc(7)
        (record,) = sink.metrics()
        assert record["kind"] == "counter"
        assert record["value"] == 7.0
        assert record["trace_id"]
        # Caller-provided sinks are not closed by the session.
        assert not sink.closed


class TestEventsAndManualSpans:
    def test_event_records_under_current_span(self):
        sink = InMemorySink()
        with observe.enabled(sink=sink):
            with observe.span("parent") as parent:
                observe.event("checkpoint", step=3)
        (record,) = sink.events()
        assert record["name"] == "checkpoint"
        assert record["span_id"] == parent.span_id
        assert record["attrs"] == {"step": 3}

    def test_emit_span_backdates_start(self):
        sink = InMemorySink()
        with observe.enabled(sink=sink):
            observe.emit_span("lifecycle", duration_s=1.5, status="error", job_id="j1")
        (record,) = sink.spans()
        assert record["duration_s"] == 1.5
        assert record["status"] == "error"
        assert record["attrs"]["job_id"] == "j1"

    def test_disabled_event_and_emit_span_are_noops(self):
        observe.event("nothing")
        observe.emit_span("nothing", duration_s=1.0)


class TestPhaseSeconds:
    def test_none_when_any_span_unmeasured(self):
        assert observe.phase_seconds(a=NULL_SPAN) is None

    def test_collects_finished_durations(self):
        with observe.enabled():
            with observe.span("a") as a, observe.span("b") as b:
                pass
        phases = observe.phase_seconds(sta=a, power=b)
        assert set(phases) == {"sta", "power"}
        assert all(v >= 0.0 for v in phases.values())

    def test_total_phase_seconds_skips_disabled_iterations(self):
        totals = observe.total_phase_seconds(
            [{"sta": 1.0}, None, {"sta": 0.5, "power": 2.0}]
        )
        assert totals == {"sta": 1.5, "power": 2.0}


class TestPropagation:
    def test_context_is_picklable(self):
        ctx = TraceContext("t1", "s1", "/tmp/x.jsonl")
        assert pickle.loads(pickle.dumps(ctx)) == ctx

    def test_propagation_context_disabled_is_none(self):
        assert observe.propagation_context() is None

    def test_propagation_context_carries_current_span(self, tmp_path):
        path = str(tmp_path / "t.jsonl")
        with observe.enabled(jsonl_path=path):
            with observe.span("root") as root:
                ctx = observe.propagation_context()
        assert ctx.span_id == root.span_id
        assert ctx.trace_id == root.trace_id
        assert ctx.jsonl_path == path

    def test_attach_none_is_noop(self):
        with observe.attach(None):
            assert not observe.is_enabled()

    def test_attach_reparents_and_appends(self, tmp_path):
        path = tmp_path / "t.jsonl"
        path.write_text('{"type":"span","trace_id":"t9","span_id":"anchor",'
                        '"parent_id":null,"name":"root","t_start":0.0,'
                        '"duration_s":1.0,"status":"ok","pid":1,"attrs":{}}\n')
        ctx = TraceContext("t9", "anchor", str(path))
        with observe.attach(ctx):
            with observe.span("worker-side"):
                observe.counter("delta").inc()
        records = [json.loads(line) for line in path.read_text().splitlines()]
        assert len(records) == 3  # pre-existing root + span + metric flush
        worker = next(r for r in records if r["name"] == "worker-side")
        assert worker["trace_id"] == "t9"
        assert worker["parent_id"] == "anchor"
        metric = next(r for r in records if r["type"] == "metric")
        assert metric["trace_id"] == "t9"

    def test_attach_inside_active_session_is_noop(self):
        sink = InMemorySink()
        with observe.enabled(sink=sink):
            session = _active()
            with observe.attach(TraceContext("other", None, None)):
                assert _active() is session

    def test_fork_inherited_session_is_invisible(self):
        # Simulate a forked worker: a session object whose pid is not ours.
        sink = InMemorySink()
        with observe.enabled(sink=sink):
            session = _active()
            session.pid = session.pid + 1  # pretend we are the child
            try:
                assert not observe.is_enabled()
                assert observe.span("x") is NULL_SPAN
                assert observe.propagation_context() is None
            finally:
                session.pid = session.pid - 1


class TestSinks:
    def test_in_memory_typed_accessors(self):
        sink = InMemorySink()
        sink.write({"type": "span", "name": "a"})
        sink.write({"type": "event", "name": "b"})
        sink.write({"type": "metric", "name": "c"})
        assert [r["name"] for r in sink.spans()] == ["a"]
        assert [r["name"] for r in sink.events()] == ["b"]
        assert [r["name"] for r in sink.metrics()] == ["c"]

    def test_jsonl_truncates_by_default_appends_on_request(self, tmp_path):
        path = str(tmp_path / "t.jsonl")
        first = JsonlSink(path)
        first.write({"n": 1})
        first.close()
        appender = JsonlSink(path, append=True)
        appender.write({"n": 2})
        appender.close()
        assert [json.loads(line)["n"] for line in open(path)] == [1, 2]
        fresh = JsonlSink(path)
        fresh.write({"n": 3})
        fresh.close()
        assert [json.loads(line)["n"] for line in open(path)] == [3]


class TestGuardbandNumerics:
    def test_bit_identical_enabled_vs_disabled(self, tiny_flow, fabric25):
        baseline = thermal_aware_guardband(tiny_flow, fabric25, t_ambient=25.0)
        with observe.enabled(sink=InMemorySink()):
            traced = thermal_aware_guardband(tiny_flow, fabric25, t_ambient=25.0)
        assert traced.frequency_hz == baseline.frequency_hz
        assert traced.critical_path_s == baseline.critical_path_s
        assert traced.iterations == baseline.iterations
        assert (
            traced.tile_temperatures == baseline.tile_temperatures
        ).all()

    def test_guardband_trace_shape(self, tiny_flow, fabric25):
        sink = InMemorySink()
        with observe.enabled(sink=sink):
            result = thermal_aware_guardband(tiny_flow, fabric25, t_ambient=25.0)
        spans = sink.spans()
        iteration_spans = [s for s in spans if s["name"] == "guardband.iteration"]
        assert len(iteration_spans) == result.iterations
        first = iteration_spans[0]["attrs"]
        assert first["delta_frequency_hz"] == 0.0
        assert first["max_delta_celsius"] > 0.0
        run = next(s for s in spans if s["name"] == "guardband.run")
        assert run["attrs"]["converged"] is True
        assert run["attrs"]["frequency_hz"] == result.frequency_hz
        (histogram,) = [
            r for r in sink.metrics() if r["name"] == "guardband.iterations"
        ]
        assert histogram["count"] == 1


def _write_trace(path, records):
    with open(path, "w", encoding="utf-8") as handle:
        for record in records:
            handle.write(
                (record if isinstance(record, str) else json.dumps(record))
                + "\n"
            )


def _span(trace_id, span_id, parent_id, name, t_start=0.0, **attrs):
    return {
        "type": "span", "trace_id": trace_id, "span_id": span_id,
        "parent_id": parent_id, "name": name, "t_start": t_start,
        "duration_s": 0.5, "status": "ok", "pid": 1, "attrs": attrs,
    }


class TestReport:
    def test_tree_orphans_and_malformed(self, tmp_path):
        path = tmp_path / "t.jsonl"
        _write_trace(
            path,
            [
                _span("t1", "child", "root", "inner", t_start=2.0),
                _span("t1", "child0", "root", "early", t_start=1.0),
                _span("t1", "lost", "never-closed", "orphan"),
                _span("t1", "root", None, "sweep.run"),
                '{"definitely not json',
                {"type": "event", "trace_id": "t1", "span_id": "root",
                 "name": "job.terminal", "t": 1.0, "pid": 1, "attrs": {}},
                _span("t2", "other", None, "second-trace"),
            ],
        )
        trace_file = report_module.load_traces(str(path))
        assert trace_file.malformed_lines == 1
        assert [t.trace_id for t in trace_file.traces] == ["t1", "t2"]
        t1 = trace_file.traces[0]
        assert [r.name for r in t1.roots] == ["sweep.run"]
        # children sorted by start time
        assert [c.name for c in t1.roots[0].children] == ["early", "inner"]
        assert [o.name for o in t1.orphans] == ["orphan"]
        assert report_module.event_summary(t1) == {"job.terminal": 1}

    def test_cell_and_metric_summaries(self, tmp_path):
        path = tmp_path / "t.jsonl"
        _write_trace(
            path,
            [
                _span("t1", "r", None, "sweep.run"),
                _span("t1", "c1", "r", "sweep.cell",
                      job_id="j1", attempts=2, cache_hits=1),
                {"type": "metric", "kind": "counter", "name": "thermal.solves",
                 "value": 3.0, "trace_id": "t1", "pid": 1},
                {"type": "metric", "kind": "counter", "name": "thermal.solves",
                 "value": 4.0, "trace_id": "t1", "pid": 2},
                {"type": "metric", "kind": "histogram", "name": "iters",
                 "count": 2, "sum": 10.0, "min": 4.0, "max": 6.0,
                 "trace_id": "t1", "pid": 1},
            ],
        )
        trace = report_module.load_traces(str(path)).traces[0]
        (cell,) = report_module.cell_summary(trace)
        assert cell["job_id"] == "j1"
        assert cell["attempts"] == 2
        assert cell["cache_hits"] == 1
        metrics = report_module.metric_summary(trace)
        assert metrics["counters"]["thermal.solves"] == 7.0
        assert metrics["histograms"]["iters"]["count"] == 2.0

    def test_phase_summary_aggregates_by_name(self, tmp_path):
        path = tmp_path / "t.jsonl"
        _write_trace(
            path,
            [
                _span("t1", "a", None, "phase.sta"),
                _span("t1", "b", None, "phase.sta"),
            ],
        )
        trace = report_module.load_traces(str(path)).traces[0]
        ((name, count, total, mean, lo, hi),) = report_module.phase_summary(trace)
        assert name == "phase.sta" and count == 2
        assert total == pytest.approx(1.0)
        assert mean == lo == hi == pytest.approx(0.5)

    def test_render_report_smoke(self, tmp_path):
        path = tmp_path / "t.jsonl"
        _write_trace(
            path,
            [
                _span("t1", "r", None, "sweep.run", workers=2),
                _span("t1", "j", "r", "sweep.job", job_id="j1"),
            ],
        )
        text = report_module.render_report(report_module.load_traces(str(path)))
        assert "sweep.run" in text
        assert "  sweep.job" in text  # indented child
        assert "per-phase summary" in text

    def test_max_depth_prunes(self, tmp_path):
        path = tmp_path / "t.jsonl"
        _write_trace(
            path,
            [
                _span("t1", "r", None, "sweep.run"),
                _span("t1", "j", "r", "sweep.job"),
            ],
        )
        text = report_module.render_report(
            report_module.load_traces(str(path)), max_depth=1
        )
        # The tree line is replaced by a pruning marker; the phase table
        # below it still aggregates every span.
        tree = text.split("per-phase summary")[0]
        assert "sweep.job" not in tree
        assert "child span(s) pruned" in tree


class TestObserveCli:
    def _real_trace(self, tmp_path):
        path = str(tmp_path / "trace.jsonl")
        with observe.enabled(jsonl_path=path):
            with observe.span("root"):
                observe.event("tick")
        return path

    def test_report_text(self, tmp_path, capsys):
        path = self._real_trace(tmp_path)
        assert observe_main(["report", path]) == 0
        out = capsys.readouterr().out
        assert "root" in out and "events" in out

    def test_report_json(self, tmp_path, capsys):
        path = self._real_trace(tmp_path)
        assert observe_main(["report", path, "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["traces"][0]["tree"][0]["name"] == "root"
        assert payload["malformed_lines"] == 0

    def test_missing_file_exits_nonzero(self, tmp_path, capsys):
        assert observe_main(["report", str(tmp_path / "absent.jsonl")]) == 1
        assert "error" in capsys.readouterr().err

    def test_empty_trace_exits_nonzero(self, tmp_path, capsys):
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        assert observe_main(["report", str(path)]) == 1
        assert "no trace records" in capsys.readouterr().err
