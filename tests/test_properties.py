"""Property-based tests (hypothesis) on core invariants."""

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.arch.params import ArchParams
from repro.coffe.subcircuits import MuxModel, soft_fabric_circuits
from repro.netlists.generator import NetlistSpec, generate_netlist
from repro.reporting.figures import format_bar_chart
from repro.reporting.tables import format_table
from repro.spice.devices import (
    drain_current,
    drain_current_and_derivatives,
    effective_resistance,
    leakage_current,
)
from repro.spice.netlist import PiecewiseLinearSource
from repro.technology import HP_NMOS, celsius_to_kelvin

temps = st.floats(min_value=celsius_to_kelvin(0.0), max_value=celsius_to_kelvin(100.0))
voltages = st.floats(min_value=0.0, max_value=0.8)
widths = st.floats(min_value=1.0, max_value=64.0)


class TestDeviceProperties:
    @given(vgs=voltages, vds=st.floats(min_value=1e-4, max_value=0.8), t=temps,
           w=widths)
    @settings(max_examples=120, deadline=None)
    def test_current_positive_and_finite(self, vgs, vds, t, w):
        i = drain_current(HP_NMOS, vgs, vds, w, t)
        assert i > 0.0 and math.isfinite(i)

    @given(vgs=voltages, vds=st.floats(min_value=1e-3, max_value=0.8), t=temps)
    @settings(max_examples=80, deadline=None)
    def test_derivatives_consistent_with_value(self, vgs, vds, t):
        i, gm, gds = drain_current_and_derivatives(HP_NMOS, vgs, vds, 2.0, t)
        assert i == pytest.approx(drain_current(HP_NMOS, vgs, vds, 2.0, t))
        assert gm >= 0.0 and gds >= 0.0

    @given(t=temps, w=widths)
    @settings(max_examples=60, deadline=None)
    def test_resistance_positive_and_width_monotone(self, t, w):
        r = effective_resistance(HP_NMOS, 0.8, w, t)
        r2 = effective_resistance(HP_NMOS, 0.8, 2.0 * w, t)
        assert 0.0 < r2 < r

    @given(t1=temps, t2=temps)
    @settings(max_examples=60, deadline=None)
    def test_leakage_monotone_in_temperature(self, t1, t2):
        lo, hi = sorted((t1, t2))
        assert leakage_current(HP_NMOS, 0.8, 1.0, lo) <= leakage_current(
            HP_NMOS, 0.8, 1.0, hi
        ) * (1.0 + 1e-12)


class TestSubcircuitProperties:
    @given(
        w_pass=st.floats(min_value=1.0, max_value=16.0),
        w1=st.floats(min_value=1.0, max_value=16.0),
        w2=st.floats(min_value=1.0, max_value=32.0),
        t=temps,
    )
    @settings(max_examples=60, deadline=None)
    def test_mux_delay_area_leakage_positive(self, w_pass, w1, w2, t):
        mux = soft_fabric_circuits(ArchParams())["sb_mux"]
        sizes = {"w_pass": w_pass, "w_inv1": w1, "w_inv2": w2}
        assert mux.delay_seconds(sizes, t) > 0.0
        assert mux.area_um2(sizes) > 0.0
        assert mux.leakage_watts(sizes, t) > 0.0

    @given(n=st.integers(min_value=2, max_value=96))
    @settings(max_examples=40, deadline=None)
    def test_mux_two_level_split_covers_inputs(self, n):
        mux = MuxModel("m", n, 0.8)
        assert mux.level1 * mux.level2 >= n

    @given(
        w=st.floats(min_value=1.0, max_value=16.0),
        t_lo=temps, t_hi=temps,
    )
    @settings(max_examples=60, deadline=None)
    def test_lut_delay_monotone_in_temperature(self, w, t_lo, t_hi):
        lut = soft_fabric_circuits(ArchParams())["lut"]
        lo, hi = sorted((t_lo, t_hi))
        sizes = {"w_pass": w, "w_mid": 2.0, "w_out": 4.0}
        assert lut.delay_seconds(sizes, lo) <= lut.delay_seconds(sizes, hi) * (
            1.0 + 1e-12
        )


class TestGeneratorProperties:
    @given(
        n_luts=st.integers(min_value=2, max_value=120),
        depth=st.integers(min_value=1, max_value=10),
        seed=st.integers(min_value=0, max_value=2**31 - 1),
        ff_ratio=st.floats(min_value=0.0, max_value=1.0),
    )
    @settings(max_examples=40, deadline=None)
    def test_generated_netlists_always_valid(self, n_luts, depth, seed, ff_ratio):
        spec = NetlistSpec(
            "prop", n_luts=n_luts, depth=depth, seed=seed, ff_ratio=ff_ratio
        )
        netlist = generate_netlist(spec)  # validate() runs inside
        assert netlist.count.__self__ is netlist
        assert netlist.n_nets > 0
        for net in netlist.nets:
            assert net.sinks

    @given(seed=st.integers(min_value=0, max_value=1000))
    @settings(max_examples=20, deadline=None)
    def test_generation_is_pure(self, seed):
        spec = NetlistSpec("p", n_luts=20, depth=4, seed=seed)
        a, b = generate_netlist(spec), generate_netlist(spec)
        assert a.stats() == b.stats()


class TestReportingProperties:
    @given(
        values=st.lists(
            st.floats(min_value=0.0, max_value=1e6), min_size=1, max_size=12
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_bar_chart_never_crashes(self, values):
        labels = [f"b{i}" for i in range(len(values))]
        text = format_bar_chart(labels, values, title="t")
        assert len(text.splitlines()) == len(values) + 1

    @given(
        rows=st.lists(
            st.tuples(
                st.text(
                    alphabet=st.characters(
                        codec="ascii", categories=("L", "N", "P", "Zs")
                    ),
                    max_size=8,
                ),
                st.floats(allow_nan=False, allow_infinity=False),
            ),
            min_size=1, max_size=10,
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_table_row_count(self, rows):
        text = format_table(["name", "value"], rows)
        assert len(text.splitlines()) == len(rows) + 2


class TestPwlProperties:
    @given(
        points=st.lists(
            st.tuples(
                st.floats(min_value=0.0, max_value=1e-6),
                st.floats(min_value=-2.0, max_value=2.0),
            ),
            min_size=1,
            max_size=8,
            unique_by=lambda p: p[0],
        ),
        t=st.floats(min_value=-1e-6, max_value=2e-6),
    )
    @settings(max_examples=60, deadline=None)
    def test_pwl_stays_within_value_envelope(self, points, t):
        points = sorted(points)
        src = PiecewiseLinearSource(points)
        lo = min(v for _, v in points)
        hi = max(v for _, v in points)
        assert lo - 1e-12 <= src(t) <= hi + 1e-12
