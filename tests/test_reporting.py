"""Tests for the plain-text table/figure formatting."""

import pytest

from repro.reporting.figures import format_bar_chart, format_series
from repro.reporting.tables import format_table


class TestTable:
    def test_alignment_and_header(self):
        text = format_table(
            ["name", "value"], [("alpha", 1.5), ("b", 22.0)], title="T"
        )
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "name" in lines[1]
        assert set(lines[2]) <= {"-", "+"}
        assert len(lines) == 5

    def test_rejects_ragged_rows(self):
        with pytest.raises(ValueError, match="cells"):
            format_table(["a", "b"], [(1,)])

    def test_float_formatting(self):
        text = format_table(["x"], [(0.123456,)])
        assert "0.1235" in text


class TestBarChart:
    def test_peak_bar_is_longest(self):
        text = format_bar_chart(["a", "b"], [10.0, 50.0])
        bars = [line.count("#") for line in text.splitlines()]
        assert bars[1] > bars[0]

    def test_values_printed(self):
        text = format_bar_chart(["x"], [36.5])
        assert "36.5%" in text

    def test_rejects_mismatched_lengths(self):
        with pytest.raises(ValueError):
            format_bar_chart(["a"], [1.0, 2.0])

    def test_empty_ok(self):
        assert format_bar_chart([], [], title="none") == "none"


class TestSeries:
    def test_column_per_series(self):
        text = format_series(
            [0.0, 50.0],
            [("D0", [1.0, 2.0]), ("D100", [1.5, 1.8])],
            title="fig",
        )
        lines = text.splitlines()
        assert lines[0] == "fig"
        assert "D0" in lines[1] and "D100" in lines[1]
        assert len(lines) == 4
