"""Tests for PathFinder internals: cost model, net ordering, route trees."""

import pytest

from repro.arch.layout import FabricLayout, TileType
from repro.arch.rrgraph import RRNodeType, build_rr_graph
from repro.cad.pack import pack_netlist
from repro.cad.place import place
from repro.cad.route import (
    NetRoute,
    _node_cost,
    _routable_nets,
    route,
)


@pytest.fixture(scope="module")
def routed(tiny_netlist, arch):
    packed = pack_netlist(tiny_netlist, arch)
    counts = {t: 0 for t in TileType}
    for c in packed.clusters:
        counts[c.type] += 1
    layout = FabricLayout.for_netlist(
        arch, counts[TileType.CLB], counts[TileType.BRAM],
        counts[TileType.DSP], counts[TileType.IO],
    )
    placement = place(packed, layout, seed=21)
    graph = build_rr_graph(arch, layout)
    return packed, placement, graph, route(packed, placement, graph)


class TestCostModel:
    def test_free_node_costs_base(self):
        assert _node_cost(0, [0], [0.0], [1], pres_fac=1.0) == pytest.approx(1.0)

    def test_full_node_penalized(self):
        free = _node_cost(0, [0], [0.0], [1], pres_fac=2.0)
        full = _node_cost(0, [1], [0.0], [1], pres_fac=2.0)
        assert full > free

    def test_history_accumulates_cost(self):
        fresh = _node_cost(0, [0], [0.0], [1], pres_fac=1.0)
        scarred = _node_cost(0, [0], [3.0], [1], pres_fac=1.0)
        assert scarred == pytest.approx(4.0 * fresh)

    def test_pres_fac_scales_overuse(self):
        mild = _node_cost(0, [2], [0.0], [1], pres_fac=0.5)
        harsh = _node_cost(0, [2], [0.0], [1], pres_fac=5.0)
        assert harsh > mild


class TestNetOrdering:
    def test_high_fanout_first(self, routed):
        packed, placement, graph, _ = routed
        nets = _routable_nets(packed, placement, graph)
        fanouts = [len(sinks) for _net, _src, sinks, _bb in nets]
        assert fanouts == sorted(fanouts, reverse=True)

    def test_bounding_boxes_contain_terminals(self, routed):
        packed, placement, graph, _ = routed
        for net_id, source, sinks, (x_lo, y_lo, x_hi, y_hi) in _routable_nets(
            packed, placement, graph
        ):
            for node_id in [source] + sinks:
                node = graph.nodes[node_id]
                assert x_lo <= node.x <= x_hi
                assert y_lo <= node.y <= y_hi


class TestRouteTrees:
    def test_all_nodes_includes_source(self, routed):
        *_, result = routed
        for net_route in result.routes.values():
            assert net_route.source_node in net_route.all_nodes()

    def test_tree_paths_share_prefixes_not_conflict(self, routed):
        packed, placement, graph, result = routed
        # A net's sink paths form a tree: the union of nodes never contains
        # two distinct incoming tree edges for the same node.
        for net_route in result.routes.values():
            parent = {}
            for path in net_route.sink_paths.values():
                for a, b in zip(path, path[1:]):
                    if b in parent:
                        assert parent[b] == a, "node has two tree parents"
                    parent[b] = a

    def test_wire_accounting(self, routed):
        *_, result = routed
        total = result.total_wire_nodes()
        assert total > 0
        # Upper bound: cannot exceed the number of wires used per net summed.
        upper = sum(
            sum(1 for n in r.all_nodes()
                if result.graph.nodes[n].type in (RRNodeType.CHANX, RRNodeType.CHANY))
            for r in result.routes.values()
        )
        assert total == upper

    def test_no_overuse_reported(self, routed):
        *_, result = routed
        assert result.overused_nodes == 0
