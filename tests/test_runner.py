"""Tests for the parallel experiment engine (``repro.runner``).

Failure-path coverage: a raising job is recorded without aborting the
sweep, transient errors retry up to the budget, a corrupt flow-cache
pickle is quarantined, a killed worker degrades to a per-job failure, and
parallel execution is bit-identical to serial.
"""

from __future__ import annotations

import json
import os
import pickle
import signal
import time

import pytest

from repro import observe
from repro.cad.flow import _disk_cache_path
from repro.cad.route import RoutingError
from repro.core.guardband import GuardbandConfig
from repro.netlists.generator import NetlistSpec
from repro.observe import report as observe_report
from repro.observe.sinks import InMemorySink
from repro.runner import ExperimentSpec, JobFailure, JobResult, run_sweep
from repro.runner import engine as engine_module

TINY_A = NetlistSpec("runner_tiny_a", n_luts=10, depth=3, seed=51,
                     base_activity=0.2)
TINY_B = NetlistSpec("runner_tiny_b", n_luts=12, depth=3, seed=52,
                     base_activity=0.18)


@pytest.fixture()
def cache_dir(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    return tmp_path


def tiny_spec(**overrides) -> ExperimentSpec:
    defaults = dict(benchmarks=(TINY_A, TINY_B), ambients=(25.0,))
    defaults.update(overrides)
    return ExperimentSpec(**defaults)


# Module-level so the process pool can pickle them by reference (the
# forked workers share this module's in-memory state).
def _kill_own_worker(job, store=None):
    os.kill(os.getpid(), signal.SIGKILL)


def _sleep_job(job, store=None):
    time.sleep(3.0)


def _slow_ok_job(job, store=None):
    time.sleep(0.4)
    return JobResult(
        job_id=job.job_id, benchmark=job.benchmark,
        t_ambient=job.t_ambient, corner=job.corner,
        frequency_hz=1e9, worst_case_hz=5e8, gain=1.0, iterations=1,
        total_power_w=1.0, max_tile_celsius=50.0, mean_tile_celsius=40.0,
        wall_seconds=0.4,
    )


def _kill_worker_on_tiny_a(job, store=None):
    if job.benchmark == "runner_tiny_a":
        os.kill(os.getpid(), signal.SIGKILL)
    return _slow_ok_job(job)


class TestExperimentSpec:
    def test_grid_expansion(self):
        spec = ExperimentSpec(
            benchmarks=("sha", "bgm"),
            ambients=(25.0, 70.0),
            corners=(25.0, 70.0),
        )
        jobs = spec.expand()
        assert len(jobs) == spec.n_jobs == 8
        assert len({job.job_id for job in jobs}) == 8
        # Benchmark-major: consecutive jobs share a design, so parallel
        # workers queue on one flow-cache lock instead of re-placing.
        assert [j.benchmark for j in jobs[:4]] == ["sha"] * 4

    def test_per_benchmark_base_activity(self):
        spec = ExperimentSpec(benchmarks=("sha", "bgm"))
        configs = {j.benchmark: j.config for j in spec.expand()}
        assert configs["sha"].base_activity == pytest.approx(0.19)
        assert configs["bgm"].base_activity == pytest.approx(0.12)

    def test_explicit_config_applies_uniformly(self):
        config = GuardbandConfig(delta_t=4.0, base_activity=0.3)
        spec = ExperimentSpec(benchmarks=("sha", "bgm"), config=config)
        assert all(j.config == config for j in spec.expand())

    def test_unknown_benchmark_rejected(self):
        with pytest.raises(ValueError, match="unknown VTR benchmark"):
            ExperimentSpec(benchmarks=("nonexistent",))

    def test_empty_grid_rejected(self):
        with pytest.raises(ValueError):
            ExperimentSpec(benchmarks=())
        with pytest.raises(ValueError):
            ExperimentSpec(benchmarks=("sha",), ambients=())


class TestSerialSweep:
    def test_records_results_and_streams_jsonl(self, cache_dir, tmp_path):
        jsonl = tmp_path / "out" / "sweep.jsonl"
        jsonl.parent.mkdir()
        sweep = run_sweep(
            tiny_spec(ambients=(25.0, 70.0)), workers=1,
            jsonl_path=str(jsonl),
        )
        assert sweep.ok and sweep.n_jobs == 4
        assert all(isinstance(r, JobResult) for r in sweep.results)
        for result in sweep.results:
            assert result.frequency_hz > result.worst_case_hz > 0
            assert set(result.phase_seconds) == {"sta", "power", "thermal"}
            assert result.cache_key  # disk cache was on
        records = [json.loads(line) for line in jsonl.read_text().splitlines()]
        assert len(records) == 4
        assert all(r["type"] == "result" for r in records)
        assert records[0]["phase_seconds"]["sta"] > 0.0

    def test_gain_slices(self, cache_dir):
        sweep = run_sweep(tiny_spec(ambients=(25.0, 70.0)), workers=1)
        assert 0.0 < sweep.mean_gain(t_ambient=70.0) < sweep.mean_gain(
            t_ambient=25.0
        )
        with pytest.raises(ValueError):
            sweep.mean_gain(t_ambient=999.0)

    def test_worker_exception_recorded_not_fatal(self, cache_dir, monkeypatch):
        real = engine_module._execute_job

        def flaky(job, store=None):
            if job.benchmark == "runner_tiny_a":
                raise RuntimeError("synthetic job explosion")
            return real(job)

        monkeypatch.setattr(engine_module, "_execute_job", flaky)
        sweep = run_sweep(tiny_spec(), workers=1)
        assert len(sweep.results) == 1 and len(sweep.failures) == 1
        failure = sweep.failures[0]
        assert isinstance(failure, JobFailure)
        assert failure.benchmark == "runner_tiny_a"
        assert failure.error_type == "RuntimeError"
        assert "explosion" in failure.message
        assert failure.attempts == 1  # deterministic errors are not retried
        assert not failure.retryable

    def test_transient_error_retried_until_success(self, cache_dir, monkeypatch):
        real = engine_module._execute_job
        calls = {"n": 0}

        def congested_once(job, store=None):
            calls["n"] += 1
            if calls["n"] == 1:
                raise RoutingError("transient congestion")
            return real(job)

        monkeypatch.setattr(engine_module, "_execute_job", congested_once)
        sweep = run_sweep(
            ExperimentSpec(benchmarks=(TINY_A,)), workers=1, max_retries=2
        )
        assert sweep.ok
        assert sweep.results[0].attempts == 2

    def test_retry_exhaustion_recorded(self, cache_dir, monkeypatch):
        def always_congested(job, store=None):
            raise RoutingError("permanent congestion")

        monkeypatch.setattr(engine_module, "_execute_job", always_congested)
        sweep = run_sweep(
            ExperimentSpec(benchmarks=(TINY_A,)), workers=1, max_retries=2
        )
        assert not sweep.results
        failure = sweep.failures[0]
        assert failure.error_type == "RoutingError"
        assert failure.attempts == 3  # first try + 2 retries
        assert failure.retryable

    def test_routing_retry_perturbs_placement_seed(
        self, cache_dir, monkeypatch
    ):
        # The flow is deterministic per seed, so a useful RoutingError
        # retry must explore a different placement.
        real = engine_module._execute_job
        seeds = []

        def congested_once(job, store=None):
            seeds.append(job.seed)
            if len(seeds) == 1:
                raise RoutingError("congested at this placement seed")
            return real(job)

        monkeypatch.setattr(engine_module, "_execute_job", congested_once)
        sweep = run_sweep(
            ExperimentSpec(benchmarks=(TINY_A,), seed=7), workers=1,
            max_retries=1,
        )
        assert sweep.ok
        assert seeds == [7, 8]

    def test_jsonl_truncated_per_run(self, cache_dir, tmp_path):
        # Re-running with the same --jsonl path must not mix records from
        # two runs (consumers count lines / aggregate whole files).
        jsonl = tmp_path / "sweep.jsonl"
        run_sweep(tiny_spec(), workers=1, jsonl_path=str(jsonl))
        sweep = run_sweep(tiny_spec(), workers=1, jsonl_path=str(jsonl))
        records = [json.loads(line) for line in jsonl.read_text().splitlines()]
        assert len(records) == sweep.n_jobs == 2

    def test_corrupt_cache_pickle_quarantined(self, cache_dir):
        spec = ExperimentSpec(benchmarks=(TINY_A,))
        job = spec.expand()[0]
        path = _disk_cache_path(job.resolve_netlist(), job.arch, job.seed)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_bytes(b"definitely not a pickle")
        from repro.cad import flow as flow_module

        flow_module._FLOW_CACHE.clear()
        sweep = run_sweep(spec, workers=1)
        assert sweep.ok, sweep.failures
        quarantined = list(cache_dir.glob("*.corrupt"))
        assert len(quarantined) == 1
        # The entry was recomputed and re-cached as a valid pickle.
        with open(path, "rb") as handle:
            pickle.load(handle)


class TestParallelSweep:
    def test_parallel_bit_identical_to_serial(self, cache_dir):
        spec = tiny_spec(ambients=(25.0, 70.0))
        serial = run_sweep(spec, workers=1)
        parallel = run_sweep(spec, workers=2)
        assert serial.ok and parallel.ok
        assert serial.frequencies() == parallel.frequencies()
        assert serial.gains() == parallel.gains()
        assert [r.job_id for r in serial.results] == [
            r.job_id for r in parallel.results
        ]

    def test_killed_worker_degrades_to_recorded_failure(
        self, cache_dir, monkeypatch
    ):
        # Two jobs so the engine actually takes the pool path (it clamps
        # workers to the job count and runs workers=1 in-process).
        monkeypatch.setattr(engine_module, "_execute_job", _kill_own_worker)
        sweep = run_sweep(tiny_spec(), workers=2, max_retries=1)
        assert not sweep.results
        assert len(sweep.failures) == 2
        for failure in sweep.failures:
            assert failure.error_type == "BrokenProcessPool"
            assert failure.attempts == 2

    def test_job_timeout_recorded(self, cache_dir, monkeypatch):
        monkeypatch.setattr(engine_module, "_execute_job", _sleep_job)
        started = time.perf_counter()
        sweep = run_sweep(tiny_spec(), workers=2, job_timeout=0.5)
        assert time.perf_counter() - started < 3.0
        assert not sweep.results
        assert {f.error_type for f in sweep.failures} == {"TimeoutError"}

    def test_queue_wait_not_counted_against_timeout(
        self, cache_dir, monkeypatch
    ):
        # 6 jobs on 2 workers: the last pair starts executing ~0.8s after
        # submission.  With the timeout measured from execution start
        # (bounded dispatch), a 1s budget per 0.4s job never expires; a
        # timeout measured from submission would spuriously kill them.
        monkeypatch.setattr(engine_module, "_execute_job", _slow_ok_job)
        sweep = run_sweep(
            tiny_spec(ambients=(25.0, 50.0, 70.0)), workers=2,
            job_timeout=1.0,
        )
        assert not sweep.failures, [f.to_record() for f in sweep.failures]
        assert len(sweep.results) == 6

    def test_pool_breakage_spares_queued_jobs_budget(
        self, cache_dir, monkeypatch
    ):
        # Only dispatched cells are charged an attempt when the pool
        # breaks; cells still waiting in the ready queue keep their full
        # budget.  The two tiny_a jobs dispatch first (benchmark-major),
        # kill both workers twice, and exhaust their budget; the queued
        # tiny_b jobs then run on a rebuilt pool and succeed first-try.
        monkeypatch.setattr(
            engine_module, "_execute_job", _kill_worker_on_tiny_a
        )
        sweep = run_sweep(
            tiny_spec(ambients=(25.0, 70.0)), workers=2, max_retries=1
        )
        assert len(sweep.failures) == 2
        assert all(f.benchmark == "runner_tiny_a" for f in sweep.failures)
        assert all(f.attempts == 2 for f in sweep.failures)
        assert len(sweep.results) == 2
        assert all(r.benchmark == "runner_tiny_b" for r in sweep.results)
        assert all(r.attempts == 1 for r in sweep.results)

    def test_progress_callback_sees_every_cell(self, cache_dir):
        seen = []
        sweep = run_sweep(
            tiny_spec(), workers=2,
            progress=lambda outcome, done, total: seen.append(
                (outcome.job_id, done, total)
            ),
        )
        assert sweep.ok
        assert len(seen) == 2
        assert {entry[2] for entry in seen} == {2}
        assert {entry[1] for entry in seen} == {1, 2}


class TestSweepObservability:
    def test_parallel_trace_reconstructs_single_tree(self, cache_dir, tmp_path):
        from repro.cad import flow as flow_module

        flow_module._FLOW_CACHE.clear()  # cold cache: misses are asserted
        trace_path = tmp_path / "trace.jsonl"
        with observe.enabled(jsonl_path=str(trace_path)):
            sweep = run_sweep(tiny_spec(ambients=(25.0, 70.0)), workers=2)
        assert sweep.ok

        trace_file = observe_report.load_traces(str(trace_path))
        assert trace_file.malformed_lines == 0
        assert len(trace_file.traces) == 1
        trace = trace_file.traces[0]
        assert not trace.orphans

        # One sweep.run root with every worker-side job span re-parented
        # under it, plus the engine's per-cell lifecycle spans.
        (root,) = trace.roots
        assert root.name == "sweep.run"
        assert root.attrs["n_jobs"] == 4
        assert root.attrs["n_ok"] == 4
        child_names = [c.name for c in root.children]
        assert child_names.count("sweep.job") == 4
        assert child_names.count("sweep.cell") == 4

        # Jobs really ran in forked workers: worker pids differ from the
        # engine pid that wrote sweep.run.
        job_pids = {
            node.record["pid"] for node in trace.spans
            if node.name == "sweep.job"
        }
        assert root.record["pid"] not in job_pids

        # Worker-side instrumentation made it into the same trace.
        metrics = observe_report.metric_summary(trace)
        assert metrics["counters"]["thermal.solves"] > 0
        assert metrics["counters"]["flow.cache.miss"] >= 2
        assert metrics["counters"]["sweep.jobs.ok"] == 4
        assert observe_report.event_summary(trace)["job.terminal"] == 4

        cells = observe_report.cell_summary(trace)
        assert len(cells) == 4
        assert all(row["status"] == "ok" for row in cells)

    def test_timeout_leaves_terminal_records(
        self, cache_dir, monkeypatch, tmp_path
    ):
        monkeypatch.setattr(engine_module, "_execute_job", _sleep_job)
        trace_path = tmp_path / "trace.jsonl"
        with observe.enabled(jsonl_path=str(trace_path)):
            sweep = run_sweep(tiny_spec(), workers=2, job_timeout=0.5)
        assert {f.error_type for f in sweep.failures} == {"TimeoutError"}

        trace = observe_report.load_traces(str(trace_path)).traces[0]
        cells = [n for n in trace.spans if n.name == "sweep.cell"]
        assert len(cells) == 2
        assert all(n.status == "error" for n in cells)
        assert all(n.attrs["error_type"] == "TimeoutError" for n in cells)
        terminals = [e for e in trace.events if e["name"] == "job.terminal"]
        assert len(terminals) == 2
        assert all(e["attrs"]["status"] == "TimeoutError" for e in terminals)

    def test_killed_worker_leaves_terminal_and_retry_records(
        self, cache_dir, monkeypatch, tmp_path
    ):
        monkeypatch.setattr(engine_module, "_execute_job", _kill_own_worker)
        trace_path = tmp_path / "trace.jsonl"
        with observe.enabled(jsonl_path=str(trace_path)):
            sweep = run_sweep(tiny_spec(), workers=2, max_retries=1)
        assert len(sweep.failures) == 2

        trace = observe_report.load_traces(str(trace_path)).traces[0]
        cells = [n for n in trace.spans if n.name == "sweep.cell"]
        assert len(cells) == 2
        assert all(n.attrs["error_type"] == "BrokenProcessPool" for n in cells)
        assert all(n.attrs["attempts"] == 2 for n in cells)
        summary = observe_report.event_summary(trace)
        assert summary["job.terminal"] == 2
        # Each cell burned one retry when the pool broke under it.
        assert summary["job.retry"] == 2
        assert (
            observe_report.metric_summary(trace)["counters"]["sweep.retries"]
            == 2
        )

    def test_serial_retry_emits_retry_event(self, cache_dir, monkeypatch):
        real = engine_module._execute_job
        calls = {"n": 0}

        def congested_once(job, store=None):
            calls["n"] += 1
            if calls["n"] == 1:
                raise RoutingError("transient congestion")
            return real(job)

        monkeypatch.setattr(engine_module, "_execute_job", congested_once)
        sink = InMemorySink()
        with observe.enabled(sink=sink):
            sweep = run_sweep(
                ExperimentSpec(benchmarks=(TINY_A,)), workers=1, max_retries=2
            )
        assert sweep.ok
        (retry,) = [e for e in sink.events() if e["name"] == "job.retry"]
        assert retry["attrs"]["attempts"] == 1
        assert retry["attrs"]["error_type"] == "RoutingError"
        (counter,) = [m for m in sink.metrics() if m["name"] == "sweep.retries"]
        assert counter["value"] == 1.0

    def test_cache_events_and_totals(self, cache_dir, tmp_path):
        from repro.cad import flow as flow_module

        flow_module._FLOW_CACHE.clear()  # cold cache: misses are asserted
        jsonl = tmp_path / "sweep.jsonl"
        sweep = run_sweep(
            tiny_spec(ambients=(25.0, 70.0)), workers=1,
            jsonl_path=str(jsonl),
        )
        assert sweep.ok
        # Benchmark-major order: each design's first ambient computes the
        # flow (miss), the second reuses it (hit).
        per_job = [r.cache_events for r in sweep.results]
        assert per_job == [{"miss": 1}, {"hit": 1}, {"miss": 1}, {"hit": 1}]
        assert sweep.cache_totals() == {"hit": 2, "miss": 2, "quarantine": 0}
        assert sweep.to_dict()["cache_totals"] == sweep.cache_totals()
        records = [json.loads(line) for line in jsonl.read_text().splitlines()]
        assert [r["cache_events"] for r in records] == per_job

    def test_quarantine_attributed_to_job(self, cache_dir):
        spec = ExperimentSpec(benchmarks=(TINY_A,))
        job = spec.expand()[0]
        path = _disk_cache_path(job.resolve_netlist(), job.arch, job.seed)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_bytes(b"definitely not a pickle")
        from repro.cad import flow as flow_module

        flow_module._FLOW_CACHE.clear()
        sweep = run_sweep(spec, workers=1)
        assert sweep.ok
        assert sweep.results[0].cache_events == {"miss": 1, "quarantine": 1}
        assert sweep.cache_totals()["quarantine"] == 1
