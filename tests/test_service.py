"""Tests for repro.service — scheduler dedup, event streams, client, HTTP.

The contracts under test, straight from the service's design:

- a repeated identical submission is served entirely from the store:
  every cell yields a ``store.hit`` and zero ``sweep.cell`` execution
  spans the second time;
- two clients submitting overlapping grids concurrently compute each
  overlapping cell exactly once (in-flight dedup);
- a dead worker fails the job (bounded, observable) — it never hangs;
- malformed submissions are 4xx wire diagnostics, not tracebacks.
"""

import asyncio
import json
import os
import signal
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro import observe
from repro.netlists.generator import NetlistSpec
from repro.observe.clock import monotonic
from repro.observe.sinks import FanoutSink, InMemorySink
from repro.runner.spec import ExperimentSpec
from repro.service import (
    ServiceError,
    SweepClient,
    SweepScheduler,
    to_wire,
)
from repro.service.events import EventBroker, ObserveBridge
from repro.service.http import SweepServer
from repro.store import open_store

TINY_A = NetlistSpec("service_tiny_a", n_luts=10, depth=3, seed=71,
                     base_activity=0.2)
TINY_B = NetlistSpec("service_tiny_b", n_luts=12, depth=3, seed=72,
                     base_activity=0.18)


@pytest.fixture(scope="module")
def cache_dir(tmp_path_factory):
    """Module-shared flow cache: every test reuses TINY_A/TINY_B P&R."""
    path = tmp_path_factory.mktemp("flowcache")
    patcher = pytest.MonkeyPatch()
    patcher.setenv("REPRO_CACHE_DIR", str(path))
    yield path
    patcher.undo()


def tiny_spec(**overrides) -> ExperimentSpec:
    defaults = dict(benchmarks=(TINY_A,), ambients=(25.0, 40.0))
    defaults.update(overrides)
    return ExperimentSpec(**defaults)


# Module-level so forked pool workers can pickle it by reference.
def _kill_worker(unit, context, store_path):
    os.kill(os.getpid(), signal.SIGKILL)


async def _wait_terminal(scheduler, job_id, timeout=240.0):
    deadline = monotonic() + timeout
    while scheduler.jobs[job_id].status == "running":
        if monotonic() > deadline:
            raise TimeoutError(f"job {job_id} still running after {timeout}s")
        await asyncio.sleep(0.05)
    return scheduler.result(job_id)


def run_scheduler(scenario, store_path, sink=None, **kwargs):
    """Run async ``scenario(scheduler)`` against a fresh scheduler.

    With ``sink``, an observe session is active for the duration, fanned
    out to the sink and the scheduler's broker bridge — the serve CLI's
    exact wiring, on one thread.
    """
    scheduler = SweepScheduler(open_store(store_path), **kwargs)

    async def main():
        scheduler.start()
        try:
            return await scenario(scheduler)
        finally:
            await scheduler.close()

    if sink is None:
        return asyncio.run(main())
    bridge = ObserveBridge(scheduler.broker)
    with observe.enabled(sink=FanoutSink([sink, bridge])):
        return asyncio.run(main())


def _cell_spans(sink: InMemorySink):
    return [r for r in sink.spans() if r.get("name") == "sweep.cell"]


def _events_named(sink: InMemorySink, name: str):
    return [r for r in sink.events() if r.get("name") == name]


class TestSchedulerDedupAndStore:
    def test_repeat_submission_is_served_entirely_from_store(
        self, cache_dir, tmp_path
    ):
        sink = InMemorySink()
        spec = tiny_spec()

        async def scenario(scheduler):
            first = await scheduler.submit(spec)
            await _wait_terminal(scheduler, first)
            executed_after_first = len(_cell_spans(sink))
            hits_after_first = len(_events_named(sink, "store.hit"))

            second = await scheduler.submit(spec)
            result = await _wait_terminal(scheduler, second)
            return (executed_after_first, hits_after_first, result)

        executed_first, hits_first, result = run_scheduler(
            scenario, tmp_path / "store", sink=sink, workers=1
        )
        n_cells = spec.n_jobs
        assert executed_first == n_cells
        assert result["status"] == "done"
        # The acceptance contract: second submission computes nothing —
        # store.hit covers every cell, zero new sweep.cell spans.
        assert result["n_store_hits"] == n_cells
        assert len(_cell_spans(sink)) == executed_first
        assert len(_events_named(sink, "store.hit")) - hits_first == n_cells
        assert len(_events_named(sink, "sweep.cell_skipped")) == n_cells
        # Served records carry their provenance.
        assert all(c["source"] == "store" for c in result["cells"])
        assert all(c["ok"] for c in result["cells"])

    def test_concurrent_overlapping_grids_compute_overlap_once(
        self, cache_dir, tmp_path
    ):
        sink = InMemorySink()
        spec_one = tiny_spec(ambients=(25.0, 40.0))
        spec_two = tiny_spec(ambients=(40.0, 55.0))  # 40.0 overlaps

        async def scenario(scheduler):
            # No await between the submissions: spec_one's cells are all
            # still in flight when spec_two arrives, exactly the
            # concurrent-clients race the dedup map exists for.
            first = await scheduler.submit(spec_one)
            second = await scheduler.submit(spec_two)
            r1 = await _wait_terminal(scheduler, first)
            r2 = await _wait_terminal(scheduler, second)
            return scheduler.jobs[second].n_deduped, r1, r2

        n_deduped, r1, r2 = run_scheduler(
            scenario, tmp_path / "store", sink=sink, workers=2
        )
        assert n_deduped == 1
        assert r1["status"] == "done" and r2["status"] == "done"
        # 2 + 2 cells, 1 shared: exactly 3 Algorithm 1 executions.
        assert len(_cell_spans(sink)) == 3
        by_ambient_1 = {c["t_ambient"]: c for c in r1["cells"]}
        by_ambient_2 = {c["t_ambient"]: c for c in r2["cells"]}
        # Both jobs received the shared cell, with identical numbers.
        assert by_ambient_1[40.0]["frequency_hz"] == (
            by_ambient_2[40.0]["frequency_hz"]
        )
        # The overlap span was tagged with both subscribing jobs.
        shared = [s for s in _cell_spans(sink)
                  if len(s["attrs"].get("jobs", ())) == 2]
        assert len(shared) == 1

    def test_dead_worker_fails_the_job_instead_of_hanging(
        self, cache_dir, tmp_path, monkeypatch
    ):
        from repro.service import scheduler as scheduler_module

        monkeypatch.setattr(
            scheduler_module, "_run_unit_in_worker", _kill_worker
        )
        spec = tiny_spec(ambients=(25.0,))

        async def scenario(scheduler):
            job_id = await scheduler.submit(spec)
            return await _wait_terminal(scheduler, job_id, timeout=60.0)

        result = run_scheduler(
            scenario, tmp_path / "store", workers=1, max_retries=0
        )
        assert result["status"] == "failed"
        assert result["n_failed"] == 1
        (cell,) = result["cells"]
        assert cell["ok"] is False
        assert cell["error_type"] == "BrokenProcessPool"

    def test_store_probe_never_blocks_the_event_loop(
        self, cache_dir, tmp_path, monkeypatch
    ):
        """A store-served repeat submission must not stall the loop.

        The scheduler probes the store through ``run_in_executor``
        (the ``async-blocking`` rule's invariant).  Slow every store
        read down to 0.25s and watch a 5ms heartbeat task during the
        repeat submission: if the reads ran on the loop, the heartbeat
        would gap by >= 0.25s per cell.
        """
        from repro.store.store import ResultStore

        spec = tiny_spec()  # two cells -> >= 0.5s loop stall if on-loop
        real_load = ResultStore.load

        def slow_load(self, digest):
            time.sleep(0.25)
            return real_load(self, digest)

        async def scenario(scheduler):
            first = await scheduler.submit(spec)
            await _wait_terminal(scheduler, first)

            monkeypatch.setattr(ResultStore, "load", slow_load)
            gaps = []

            async def heartbeat():
                last = monotonic()
                while True:
                    await asyncio.sleep(0.005)
                    now = monotonic()
                    gaps.append(now - last)
                    last = now

            beat = asyncio.ensure_future(heartbeat())
            try:
                second = await scheduler.submit(spec)
                result = await _wait_terminal(scheduler, second)
            finally:
                beat.cancel()
            return result, max(gaps)

        result, max_gap = run_scheduler(
            scenario, tmp_path / "store", workers=1
        )
        assert result["status"] == "done"
        assert result["n_store_hits"] == spec.n_jobs
        assert max_gap < 0.2, (
            f"event loop stalled for {max_gap:.3f}s during the store probe"
        )

    def test_scheduler_rejects_bad_parameters(self, tmp_path):
        store = open_store(tmp_path / "store")
        with pytest.raises(ValueError, match="workers"):
            SweepScheduler(store, workers=0)
        with pytest.raises(ValueError, match="max_retries"):
            SweepScheduler(store, max_retries=-1)


class TestEventBroker:
    def test_history_replays_after_finish(self):
        async def main():
            broker = EventBroker()
            broker.bind(asyncio.get_running_loop())
            broker.open_job("job-1")
            for n in range(3):
                broker.publish(("job-1",), {"type": "event", "n": n})
            broker.finish_job("job-1")
            return [record async for record in broker.stream("job-1")]

        records = asyncio.run(main())
        assert [r["n"] for r in records] == [0, 1, 2]

    def test_live_stream_ends_on_finish(self):
        async def main():
            broker = EventBroker()
            broker.bind(asyncio.get_running_loop())
            broker.open_job("job-1")

            async def consume():
                return [record async for record in broker.stream("job-1")]

            task = asyncio.ensure_future(consume())
            await asyncio.sleep(0)  # let the subscriber attach
            broker.publish(("job-1",), {"n": 1})
            broker.publish(("job-2",), {"n": "other"})  # unknown: dropped
            broker.finish_job("job-1")
            return await asyncio.wait_for(task, timeout=5.0)

        records = asyncio.run(main())
        assert [r["n"] for r in records] == [1]

    def test_knows_tracks_opened_jobs(self):
        broker = EventBroker()
        assert not broker.knows("job-1")
        broker.open_job("job-1")
        assert broker.knows("job-1")

    def test_bridge_forwards_only_job_tagged_records(self):
        broker = EventBroker()
        broker.open_job("job-1")
        bridge = ObserveBridge(broker)
        bridge.write({"type": "event", "name": "engine.internal",
                      "attrs": {}})
        bridge.write({"type": "event", "name": "no.attrs"})
        bridge.write({"type": "event", "name": "sweep.cell_skipped",
                      "attrs": {"jobs": ["job-1"]}})
        bridge.write({"type": "event", "name": "sweep.cell_skipped",
                      "attrs": {"jobs": []}})
        assert [r["name"] for r in broker._archive["job-1"]] == [
            "sweep.cell_skipped"
        ]


class TestInProcessClient:
    def test_submit_wait_result_stream_lifecycle(self, cache_dir, tmp_path):
        spec = tiny_spec(ambients=(25.0,))
        with SweepClient(store=tmp_path / "store", workers=1) as client:
            job_id = client.submit(spec)
            result = client.wait(job_id, timeout=240.0)
            assert result["status"] == "done"
            assert len(result["cells"]) == spec.n_jobs
            assert all(cell["ok"] for cell in result["cells"])
            names = [r.get("name") for r in client.stream(job_id)]
            assert "service.job_accepted" in names
            assert "service.job_finished" in names
            assert "sweep.cell" in names
            with pytest.raises(ServiceError, match="no job"):
                client.status("job-9999")
            with pytest.raises(ServiceError, match="no job"):
                list(client.stream("job-9999"))

    def test_constructor_validates_transport_choice(self, tmp_path):
        with pytest.raises(ValueError, match="exactly one"):
            SweepClient()
        with pytest.raises(ValueError, match="exactly one"):
            SweepClient(url="http://x", store=tmp_path)
        with pytest.raises(ValueError, match="trace_path"):
            SweepClient(url="http://x", trace_path="t.jsonl")


class _ServerThread:
    """A SweepServer on a background loop thread, for urllib-side tests.

    Mirrors the serve CLI's wiring: the loop thread owns the scheduler,
    the observe session and the broker bridge.
    """

    def __init__(self, store_path):
        self.url = None
        self.error = None
        self._loop = None
        self._stop = None
        self._ready = threading.Event()
        self._thread = threading.Thread(
            target=self._run, args=(store_path,), daemon=True
        )
        self._thread.start()
        assert self._ready.wait(timeout=30.0)
        if self.error is not None:
            raise self.error

    def _run(self, store_path):
        async def main():
            scheduler = SweepScheduler(open_store(store_path), workers=1)
            server = SweepServer(scheduler, port=0)
            with observe.enabled(sink=ObserveBridge(scheduler.broker)):
                await server.start()
                host, port = server.address
                self.url = f"http://{host}:{port}"
                self._loop = asyncio.get_running_loop()
                self._stop = asyncio.Event()
                self._ready.set()
                await self._stop.wait()
                await server.close()

        try:
            asyncio.run(main())
        except BaseException as error:
            self.error = error
            self._ready.set()

    def stop(self):
        if self._loop is not None and self._stop is not None:
            stop = self._stop
            self._loop.call_soon_threadsafe(stop.set)
        self._thread.join(timeout=30.0)


@pytest.fixture()
def server(cache_dir, tmp_path):
    srv = _ServerThread(tmp_path / "store")
    yield srv
    srv.stop()


def _post(url, body: bytes):
    request = urllib.request.Request(
        url, data=body, method="POST",
        headers={"Content-Type": "application/json"},
    )
    return urllib.request.urlopen(request, timeout=30.0)


def _http_error(callable_):
    with pytest.raises(urllib.error.HTTPError) as excinfo:
        callable_()
    payload = json.loads(excinfo.value.read().decode("utf-8"))
    return excinfo.value.code, payload


class TestHttpServer:
    def test_health_reports_wire_version(self, server):
        with urllib.request.urlopen(f"{server.url}/v1/health") as response:
            payload = json.loads(response.read())
        assert payload["ok"] is True
        assert payload["wire_version"] >= 1

    def test_full_submit_wait_result_over_http(self, server):
        spec = tiny_spec(ambients=(25.0,))
        client = SweepClient(url=server.url)
        job_id = client.submit(spec)
        result = client.wait(job_id, timeout=240.0)
        assert result["status"] == "done"
        assert len(result["cells"]) == spec.n_jobs
        names = [r.get("name") for r in client.stream(job_id)]
        assert "service.job_finished" in names

    def test_malformed_json_is_400(self, server):
        code, payload = _http_error(
            lambda: _post(f"{server.url}/v1/jobs", b"{not json")
        )
        assert code == 400
        assert payload["error"] == "InvalidJSON"

    def test_wire_version_mismatch_is_400_with_diagnostic(self, server):
        doc = to_wire(tiny_spec())
        doc["wire_version"] = 999
        code, payload = _http_error(
            lambda: _post(f"{server.url}/v1/jobs", json.dumps(doc).encode())
        )
        assert code == 400
        assert payload["error"] == "WireError"
        assert "999" in payload["message"]

    def test_unknown_field_is_400_naming_the_field(self, server):
        doc = to_wire(tiny_spec())
        doc["payload"]["bogus_field"] = 1
        code, payload = _http_error(
            lambda: _post(f"{server.url}/v1/jobs", json.dumps(doc).encode())
        )
        assert code == 400
        assert "bogus_field" in payload["message"]

    def test_non_spec_envelope_is_400(self, server):
        from repro.arch.params import ArchParams

        body = json.dumps(to_wire(ArchParams())).encode()
        code, payload = _http_error(
            lambda: _post(f"{server.url}/v1/jobs", body)
        )
        assert code == 400
        assert payload["error"] == "WrongKind"

    def test_unknown_job_is_404(self, server):
        for suffix in ("", "/result", "/events"):
            code, payload = _http_error(
                lambda s=suffix: urllib.request.urlopen(
                    f"{server.url}/v1/jobs/job-9999{s}", timeout=30.0
                )
            )
            assert code == 404
            assert payload["error"] == "UnknownJob"

    def test_unknown_route_is_404(self, server):
        code, payload = _http_error(
            lambda: urllib.request.urlopen(
                f"{server.url}/v2/anything", timeout=30.0
            )
        )
        assert code == 404
        assert "/v1" in payload["message"]

    def test_wrong_method_is_405(self, server):
        request = urllib.request.Request(
            f"{server.url}/v1/jobs/job-0001", method="DELETE"
        )
        code, payload = _http_error(
            lambda: urllib.request.urlopen(request, timeout=30.0)
        )
        assert code == 405
        assert payload["error"] == "MethodNotAllowed"

    def test_internal_error_is_an_opaque_structured_500(
        self, server, monkeypatch
    ):
        async def boom(self, method, path, body, writer):
            raise RuntimeError("secret-detail /private/store/path")

        monkeypatch.setattr(SweepServer, "_route", boom)
        code, payload = _http_error(
            lambda: urllib.request.urlopen(
                f"{server.url}/v1/health", timeout=30.0
            )
        )
        assert code == 500
        assert payload["error"] == "InternalError"
        # The traceback goes to the operator's observe stream only —
        # exception text must never reach the client.
        body_text = json.dumps(payload)
        assert "secret-detail" not in body_text
        assert "RuntimeError" not in body_text
        assert "Traceback" not in body_text

    def test_http_client_surfaces_service_diagnostics(self, server):
        client = SweepClient(url=server.url)
        with pytest.raises(ServiceError, match="UnknownJob"):
            client.status("job-9999")
        with pytest.raises(ServiceError, match="404"):
            list(client.stream("job-9999"))

    def test_unreachable_server_is_a_service_error(self):
        client = SweepClient(url="http://127.0.0.1:1", timeout=2.0)
        with pytest.raises(ServiceError, match="cannot reach"):
            client.status("job-0001")
