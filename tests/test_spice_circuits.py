"""Tests for the MNA netlist, DC solver and transient analysis."""

import numpy as np
import pytest

from repro.spice.dc import ConvergenceError, solve_dc
from repro.spice.measure import (
    crossing_time,
    propagation_delay,
    static_supply_current,
)
from repro.spice.netlist import (
    Circuit,
    PiecewiseLinearSource,
    step_waveform,
)
from repro.spice.transient import simulate_transient
from repro.spice.devices import effective_resistance
from repro.technology import HP_NMOS, HP_PMOS, VDD_NOMINAL, celsius_to_kelvin

T25 = celsius_to_kelvin(25.0)


def make_inverter(vin: float = 0.0, load_farads: float = 0.0) -> Circuit:
    c = Circuit("inv")
    c.voltage_source("vdd", "0", VDD_NOMINAL)
    c.voltage_source("in", "0", vin)
    c.mosfet(HP_PMOS, "out", "in", "vdd", 2.0, T25)
    c.mosfet(HP_NMOS, "out", "in", "0", 1.0, T25)
    if load_farads:
        c.capacitor("out", "0", load_farads)
    return c


class TestCircuitConstruction:
    def test_ground_aliases(self):
        c = Circuit()
        assert c.node("0") == 0
        assert c.node("gnd") == 0

    def test_node_indices_stable(self):
        c = Circuit()
        a = c.node("a")
        assert c.node("a") == a
        assert c.node_index("a") == a

    def test_unknown_node_raises(self):
        with pytest.raises(KeyError, match="unknown node"):
            Circuit().node_index("nope")

    def test_resistor_rejects_nonpositive(self):
        c = Circuit()
        with pytest.raises(ValueError):
            c.resistor("a", "b", 0.0)

    def test_pwl_rejects_unsorted(self):
        with pytest.raises(ValueError, match="increasing"):
            PiecewiseLinearSource([(1.0, 0.0), (0.5, 1.0)])

    def test_pwl_interpolates(self):
        src = PiecewiseLinearSource([(0.0, 0.0), (1.0, 1.0)])
        assert src(0.5) == pytest.approx(0.5)
        assert src(-1.0) == 0.0
        assert src(2.0) == 1.0


class TestDC:
    def test_resistor_divider(self):
        c = Circuit("divider")
        c.voltage_source("vin", "0", 1.0)
        c.resistor("vin", "mid", 1000.0)
        c.resistor("mid", "0", 3000.0)
        result = solve_dc(c)
        assert result.voltage("mid") == pytest.approx(0.75, abs=1e-9)

    def test_divider_source_current(self):
        c = Circuit("divider")
        c.voltage_source("vin", "0", 1.0)
        c.resistor("vin", "0", 500.0)
        result = solve_dc(c)
        # Sourcing supplies show negative branch current (into + pin).
        assert result.source_current(0) == pytest.approx(-2e-3, rel=1e-6)

    def test_inverter_rails(self):
        low = solve_dc(make_inverter(0.0), {"out": VDD_NOMINAL, "vdd": VDD_NOMINAL})
        high = solve_dc(make_inverter(VDD_NOMINAL), {"out": 0.0, "vdd": VDD_NOMINAL})
        assert low.voltage("out") == pytest.approx(VDD_NOMINAL, abs=1e-3)
        assert high.voltage("out") == pytest.approx(0.0, abs=1e-3)

    def test_inverter_transfer_monotonic(self):
        outs = []
        for vin in (0.0, 0.2, 0.4, 0.6, 0.8):
            c = make_inverter(vin)
            outs.append(
                solve_dc(c, {"out": VDD_NOMINAL - vin, "vdd": VDD_NOMINAL}).voltage(
                    "out"
                )
            )
        assert all(a >= b - 1e-9 for a, b in zip(outs, outs[1:]))

    def test_current_source_into_resistor(self):
        c = Circuit()
        c.current_source("0", "n", 1e-3)  # pushes 1 mA into n
        c.resistor("n", "0", 2000.0)
        assert solve_dc(c).voltage("n") == pytest.approx(2.0, rel=1e-6)

    def test_leakage_measurement_positive(self):
        c = make_inverter(0.0)
        leak = static_supply_current(c)
        assert 0.0 < leak < 1e-6


class TestTransient:
    def test_rc_step_response(self):
        # RC charge: v(t) = V (1 - e^{-t/RC}); check at t = RC.
        r, cap, v = 1e3, 1e-15, 1.0
        c = Circuit("rc")
        c.voltage_source("in", "0", step_waveform(1e-13, 0.0, v, 1e-15))
        c.resistor("in", "out", r)
        c.capacitor("out", "0", cap)
        tau = r * cap
        res = simulate_transient(c, 1e-13 + 5 * tau, tau / 200, ["out"])
        t_at = 1e-13 + tau
        v_at = float(np.interp(t_at, res.times, res.waveform("out")))
        assert v_at == pytest.approx(v * (1 - np.exp(-1)), rel=0.02)

    def test_inverter_delay_close_to_elmore(self):
        load = 2e-15
        c = Circuit("inv-tran")
        c.voltage_source("vdd", "0", VDD_NOMINAL)
        c.voltage_source("in", "0", step_waveform(20e-12, 0.0, VDD_NOMINAL, 10e-12))
        c.mosfet(HP_PMOS, "out", "in", "vdd", 2.0, T25)
        c.mosfet(HP_NMOS, "out", "in", "0", 1.0, T25)
        c.capacitor("out", "0", load)
        res = simulate_transient(
            c, 200e-12, 0.2e-12, ["in", "out"],
            dc_initial_guess={"out": VDD_NOMINAL, "vdd": VDD_NOMINAL},
        )
        tpd = propagation_delay(res, "in", "out", VDD_NOMINAL, "rise")
        elmore = effective_resistance(HP_NMOS, VDD_NOMINAL, 1.0, T25) * load
        # The switch-level abstraction should agree within ~50 %.
        assert 0.5 * elmore < tpd < 2.0 * elmore

    def test_delay_grows_with_temperature(self):
        def tpd_at(t_c):
            tk = celsius_to_kelvin(t_c)
            c = Circuit()
            c.voltage_source("vdd", "0", VDD_NOMINAL)
            c.voltage_source("in", "0", step_waveform(20e-12, 0.0, VDD_NOMINAL, 5e-12))
            c.mosfet(HP_PMOS, "out", "in", "vdd", 2.0, tk)
            c.mosfet(HP_NMOS, "out", "in", "0", 1.0, tk)
            c.capacitor("out", "0", 2e-15)
            res = simulate_transient(
                c, 200e-12, 0.25e-12, ["in", "out"],
                dc_initial_guess={"out": VDD_NOMINAL, "vdd": VDD_NOMINAL},
            )
            return propagation_delay(res, "in", "out", VDD_NOMINAL, "rise")

        assert tpd_at(100.0) > 1.2 * tpd_at(0.0)

    def test_rejects_bad_timestep(self):
        c = make_inverter(0.0, load_farads=1e-15)
        with pytest.raises(ValueError):
            simulate_transient(c, 1e-12, 2e-12)


class TestMeasure:
    def test_crossing_time_interpolates(self):
        times = np.array([0.0, 1.0, 2.0])
        wave = np.array([0.0, 0.0, 1.0])
        assert crossing_time(times, wave, 0.5, "rise") == pytest.approx(1.5)

    def test_crossing_none_when_absent(self):
        times = np.array([0.0, 1.0])
        wave = np.array([0.0, 0.1])
        assert crossing_time(times, wave, 0.5, "rise") is None

    def test_crossing_rejects_bad_direction(self):
        with pytest.raises(ValueError, match="direction"):
            crossing_time(np.array([0.0]), np.array([0.0]), 0.5, "sideways")
