"""Tests for the alpha-power MOSFET evaluation."""

import pytest

from repro.spice.devices import (
    drain_current,
    drain_current_and_derivatives,
    effective_resistance,
    effective_overdrive,
    gate_capacitance,
    drain_capacitance,
    leakage_current,
    off_current,
    pass_gate_resistance,
)
from repro.technology import HP_NMOS, LP_NMOS, celsius_to_kelvin

T25 = celsius_to_kelvin(25.0)
T0 = celsius_to_kelvin(0.0)
T100 = celsius_to_kelvin(100.0)
VDD = 0.8


class TestDrainCurrent:
    def test_off_device_barely_conducts(self):
        i_on = drain_current(HP_NMOS, VDD, VDD, 1.0, T25)
        i_off = drain_current(HP_NMOS, 0.0, VDD, 1.0, T25)
        assert i_off < 1e-4 * i_on

    def test_scales_linearly_with_width(self):
        i1 = drain_current(HP_NMOS, VDD, VDD, 1.0, T25)
        i4 = drain_current(HP_NMOS, VDD, VDD, 4.0, T25)
        assert i4 == pytest.approx(4.0 * i1, rel=1e-9)

    def test_monotonic_in_vgs(self):
        currents = [
            drain_current(HP_NMOS, v, VDD, 1.0, T25)
            for v in (0.0, 0.2, 0.4, 0.6, 0.8)
        ]
        assert all(a < b for a, b in zip(currents, currents[1:]))

    def test_monotonic_in_vds(self):
        currents = [
            drain_current(HP_NMOS, VDD, v, 1.0, T25)
            for v in (0.01, 0.1, 0.3, 0.6, 0.8)
        ]
        assert all(a < b for a, b in zip(currents, currents[1:]))

    def test_on_current_degrades_with_temperature(self):
        # Strong inversion is mobility-dominated: hotter means weaker.
        assert drain_current(HP_NMOS, VDD, VDD, 1.0, T100) < drain_current(
            HP_NMOS, VDD, VDD, 1.0, T0
        )

    def test_off_current_grows_with_temperature(self):
        # Subthreshold is exponential in -Vth/nvt: hotter means leakier.
        assert off_current(HP_NMOS, VDD, 1.0, T100) > 5.0 * off_current(
            HP_NMOS, VDD, 1.0, T0
        )

    def test_negative_vds_rejected(self):
        with pytest.raises(ValueError, match="vds"):
            drain_current(HP_NMOS, VDD, -0.1, 1.0, T25)


class TestDerivatives:
    @pytest.mark.parametrize("vgs,vds", [(0.8, 0.8), (0.5, 0.3), (0.25, 0.6)])
    def test_match_finite_differences(self, vgs, vds):
        i, gm, gds = drain_current_and_derivatives(HP_NMOS, vgs, vds, 2.0, T25)
        eps = 1e-7
        gm_fd = (
            drain_current(HP_NMOS, vgs + eps, vds, 2.0, T25)
            - drain_current(HP_NMOS, vgs - eps, vds, 2.0, T25)
        ) / (2 * eps)
        gds_fd = (
            drain_current(HP_NMOS, vgs, vds + eps, 2.0, T25)
            - drain_current(HP_NMOS, vgs, vds - eps, 2.0, T25)
        ) / (2 * eps)
        assert gm == pytest.approx(gm_fd, rel=1e-5)
        assert gds == pytest.approx(gds_fd, rel=1e-5)

    def test_derivatives_positive(self):
        _, gm, gds = drain_current_and_derivatives(HP_NMOS, 0.6, 0.4, 1.0, T25)
        assert gm > 0.0 and gds > 0.0


class TestOverdrive:
    def test_strong_inversion_limit(self):
        vgt = effective_overdrive(HP_NMOS, 1.5, T25)
        assert vgt == pytest.approx(1.5 - HP_NMOS.vth0, rel=1e-3)

    def test_subthreshold_positive_and_small(self):
        vgt = effective_overdrive(HP_NMOS, 0.0, T25)
        assert 0.0 < vgt < 0.01


class TestEffectiveResistance:
    def test_inverse_in_width(self):
        r1 = effective_resistance(HP_NMOS, VDD, 1.0, T25)
        r4 = effective_resistance(HP_NMOS, VDD, 4.0, T25)
        assert r4 == pytest.approx(r1 / 4.0, rel=1e-9)

    def test_increases_with_temperature(self):
        assert effective_resistance(HP_NMOS, VDD, 1.0, T100) > effective_resistance(
            HP_NMOS, VDD, 1.0, T0
        )

    def test_pass_gate_slower_than_grounded_source(self):
        assert pass_gate_resistance(HP_NMOS, VDD, 1.0, T25) > effective_resistance(
            HP_NMOS, VDD, 1.0, T25
        )

    def test_rejects_zero_width(self):
        with pytest.raises(ValueError, match="width"):
            effective_resistance(HP_NMOS, VDD, 0.0, T25)


class TestLeakageBlend:
    def test_total_exceeds_subthreshold(self):
        assert leakage_current(HP_NMOS, VDD, 1.0, T25) > off_current(
            HP_NMOS, VDD, 1.0, T25
        )

    def test_gate_fraction_at_reference(self):
        total = leakage_current(HP_NMOS, VDD, 1.0, T25)
        sub = off_current(HP_NMOS, VDD, 1.0, T25)
        assert sub / total == pytest.approx(
            1.0 - HP_NMOS.gate_leak_fraction, rel=1e-6
        )

    def test_blend_flatter_than_subthreshold(self):
        # The paper's leakage fits (~e^{0.014T}) are far shallower than the
        # raw subthreshold exponential; the gate/junction blend provides it.
        sub_ratio = off_current(HP_NMOS, VDD, 1.0, T100) / off_current(
            HP_NMOS, VDD, 1.0, T0
        )
        tot_ratio = leakage_current(HP_NMOS, VDD, 1.0, T100) / leakage_current(
            HP_NMOS, VDD, 1.0, T0
        )
        assert tot_ratio < 0.5 * sub_ratio
        assert 2.0 < tot_ratio < 8.0

    def test_lp_flatter_than_hp(self):
        lp_ratio = leakage_current(LP_NMOS, 0.95, 1.0, T100) / leakage_current(
            LP_NMOS, 0.95, 1.0, T0
        )
        hp_ratio = leakage_current(HP_NMOS, VDD, 1.0, T100) / leakage_current(
            HP_NMOS, VDD, 1.0, T0
        )
        assert lp_ratio < hp_ratio


class TestCapacitances:
    def test_linear_in_width(self):
        assert gate_capacitance(HP_NMOS, 3.0) == pytest.approx(
            3.0 * gate_capacitance(HP_NMOS, 1.0)
        )
        assert drain_capacitance(HP_NMOS, 3.0) == pytest.approx(
            3.0 * drain_capacitance(HP_NMOS, 1.0)
        )

    def test_gate_exceeds_drain(self):
        assert gate_capacitance(HP_NMOS, 1.0) > drain_capacitance(HP_NMOS, 1.0)
