"""Tests for the SRAM Vth-variation Monte Carlo."""

import pytest

from repro.spice.montecarlo import (
    SramLeakageSample,
    sram_cell_leakage,
    sram_weakest_cell_leakage,
)
from repro.technology import LP_NMOS, LP_PMOS, celsius_to_kelvin

T25 = celsius_to_kelvin(25.0)
T100 = celsius_to_kelvin(100.0)
VDD = 0.95


class TestCellLeakage:
    def test_positive(self):
        assert sram_cell_leakage(LP_NMOS, LP_PMOS, VDD, T25) > 0.0

    def test_lower_vth_leaks_more(self):
        nominal = sram_cell_leakage(LP_NMOS, LP_PMOS, VDD, T25)
        weak = sram_cell_leakage(LP_NMOS, LP_PMOS, VDD, T25, vth_shift_n=-0.05)
        assert weak > 2.0 * nominal

    def test_grows_with_temperature(self):
        assert sram_cell_leakage(LP_NMOS, LP_PMOS, VDD, T100) > sram_cell_leakage(
            LP_NMOS, LP_PMOS, VDD, T25
        )

    def test_gate_component_adds(self):
        channel = sram_cell_leakage(LP_NMOS, LP_PMOS, VDD, T25)
        total = sram_cell_leakage(LP_NMOS, LP_PMOS, VDD, T25, include_gate=True)
        assert total > 10.0 * channel  # LP devices are gate-leak dominated


class TestMonteCarlo:
    def test_weakest_exceeds_mean(self):
        sample = sram_weakest_cell_leakage(LP_NMOS, LP_PMOS, VDD, T25, n_cells=500)
        assert sample.weakest_amps > sample.mean_amps

    def test_deterministic_for_seed(self):
        a = sram_weakest_cell_leakage(LP_NMOS, LP_PMOS, VDD, T25, n_cells=300, seed=5)
        b = sram_weakest_cell_leakage(LP_NMOS, LP_PMOS, VDD, T25, n_cells=300, seed=5)
        assert a.weakest_amps == b.weakest_amps

    def test_different_seeds_differ(self):
        a = sram_weakest_cell_leakage(LP_NMOS, LP_PMOS, VDD, T25, n_cells=300, seed=5)
        b = sram_weakest_cell_leakage(LP_NMOS, LP_PMOS, VDD, T25, n_cells=300, seed=6)
        assert a.weakest_amps != b.weakest_amps

    def test_larger_population_leakier_tail(self):
        small = sram_weakest_cell_leakage(LP_NMOS, LP_PMOS, VDD, T25, n_cells=50)
        large = sram_weakest_cell_leakage(LP_NMOS, LP_PMOS, VDD, T25, n_cells=5000)
        assert large.weakest_amps >= small.weakest_amps

    def test_zero_sigma_degenerates_to_mean(self):
        sample = sram_weakest_cell_leakage(
            LP_NMOS, LP_PMOS, VDD, T25, n_cells=10, vth_sigma=0.0
        )
        assert sample.weakest_amps == pytest.approx(sample.mean_amps)

    def test_rejects_empty_population(self):
        with pytest.raises(ValueError):
            sram_weakest_cell_leakage(LP_NMOS, LP_PMOS, VDD, T25, n_cells=0)

    def test_result_reports_conditions(self):
        sample = sram_weakest_cell_leakage(LP_NMOS, LP_PMOS, VDD, T100, n_cells=10)
        assert isinstance(sample, SramLeakageSample)
        assert sample.t_kelvin == pytest.approx(T100)
        assert sample.n_cells == 10
