"""Tests for the DC/temperature sweep drivers — including the key
cross-validation: the Elmore abstractions used by the sizing flow must
track the full transient simulation across temperature."""

import numpy as np
import pytest

from repro.spice.devices import effective_resistance
from repro.spice.netlist import Circuit, step_waveform
from repro.spice.sweep import dc_sweep, delay_vs_temperature, temperature_sweep
from repro.spice.measure import static_supply_current
from repro.technology import HP_NMOS, HP_PMOS, VDD_NOMINAL, celsius_to_kelvin


def make_inverter(t_kelvin: float, dynamic: bool = False) -> Circuit:
    c = Circuit("inv")
    c.voltage_source("vdd", "0", VDD_NOMINAL)
    if dynamic:
        c.voltage_source(
            "in", "0", step_waveform(20e-12, 0.0, VDD_NOMINAL, 5e-12)
        )
    else:
        c.voltage_source("in", "0", 0.0)
    c.mosfet(HP_PMOS, "out", "in", "vdd", 2.0, t_kelvin)
    c.mosfet(HP_NMOS, "out", "in", "0", 1.0, t_kelvin)
    c.capacitor("out", "0", 2e-15)
    return c


class TestDcSweep:
    def test_transfer_curve_monotone(self):
        t25 = celsius_to_kelvin(25.0)
        circuit = make_inverter(t25)
        source = circuit.vsources[1]  # the input source
        sweep = dc_sweep(
            circuit, source, np.linspace(0.0, 0.8, 17), ["out"],
            initial_guess={"out": VDD_NOMINAL, "vdd": VDD_NOMINAL},
        )
        vout = sweep.of("out")
        assert vout[0] == pytest.approx(VDD_NOMINAL, abs=1e-3)
        assert vout[-1] == pytest.approx(0.0, abs=1e-3)
        assert np.all(np.diff(vout) <= 1e-9)

    def test_unknown_probe_raises(self):
        t25 = celsius_to_kelvin(25.0)
        circuit = make_inverter(t25)
        sweep = dc_sweep(circuit, circuit.vsources[1], [0.0], ["out"])
        with pytest.raises(KeyError, match="unknown probe"):
            sweep.of("ghost")

    def test_empty_grid_rejected(self):
        circuit = make_inverter(celsius_to_kelvin(25.0))
        with pytest.raises(ValueError):
            dc_sweep(circuit, circuit.vsources[1], [], ["out"])


class TestTemperatureSweep:
    def test_leakage_sweep_monotone(self):
        temps = [celsius_to_kelvin(t) for t in (0.0, 50.0, 100.0)]
        sweep = temperature_sweep(
            lambda t: make_inverter(t),
            temps,
            static_supply_current,
            probe="leak",
        )
        leak = sweep.of("leak")
        assert np.all(np.diff(leak) > 0.0)

    def test_empty_grid_rejected(self):
        with pytest.raises(ValueError):
            temperature_sweep(make_inverter, [], static_supply_current)


class TestElmoreCrossValidation:
    def test_transient_delay_tracks_effective_resistance(self):
        """The Elmore abstraction and the full simulation must agree on the
        *temperature trend* — this is what licenses using Elmore models in
        the sizing flow."""
        temps = [celsius_to_kelvin(t) for t in (0.0, 50.0, 100.0)]
        sweep = delay_vs_temperature(
            lambda t: make_inverter(t, dynamic=True),
            temps,
            "in",
            "out",
            VDD_NOMINAL,
            t_stop=200e-12,
            timestep=0.25e-12,
        )
        measured = sweep.of("delay_s")
        predicted = np.array(
            [
                effective_resistance(HP_NMOS, VDD_NOMINAL, 1.0, t) * 2e-15
                for t in temps
            ]
        )
        measured_ratio = measured[-1] / measured[0]
        predicted_ratio = predicted[-1] / predicted[0]
        assert measured_ratio == pytest.approx(predicted_ratio, rel=0.25)
        assert np.all(np.diff(measured) > 0.0)
