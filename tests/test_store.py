"""Tests for the persistent result store and checkpoint/resume sweeps.

Coverage: digest determinism/sensitivity, put/get round-trip, corruption
quarantine, concurrent multi-process writers, resume skipping completed
cells (asserted through the observe trace), warm-start convergence
equivalence, and a killed-mid-sweep subprocess that resumes without
re-executing any recorded cell.
"""

from __future__ import annotations

import multiprocessing
import os
import signal
import subprocess
import sys
import textwrap
import time
from dataclasses import replace
from pathlib import Path

import numpy as np
import pytest

from repro import observe
from repro.core.guardband import GuardbandConfig, thermal_aware_guardband
from repro.netlists.generator import NetlistSpec
from repro.observe.sinks import InMemorySink
from repro.runner import ExperimentSpec, SweepResult, run_sweep
from repro.store import (
    STORE_SCHEMA_VERSION,
    ResultStore,
    open_store,
    store_counters,
    store_digest,
)
from repro.store import store as store_module

TINY_A = NetlistSpec("store_tiny_a", n_luts=10, depth=3, seed=61,
                     base_activity=0.2)
TINY_B = NetlistSpec("store_tiny_b", n_luts=12, depth=3, seed=62,
                     base_activity=0.18)

SRC_DIR = str(Path(__file__).resolve().parents[1] / "src")


@pytest.fixture()
def cache_dir(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "flows"))
    return tmp_path


@pytest.fixture(scope="module")
def converged(tiny_flow, fabric25):
    return thermal_aware_guardband(tiny_flow, fabric25, t_ambient=25.0)


class TestStoreDigest:
    CONFIG = GuardbandConfig()

    def test_deterministic(self):
        a = store_digest("flowkey", self.CONFIG, 25.0, 25.0)
        b = store_digest("flowkey", self.CONFIG, 25.0, 25.0)
        assert a == b and len(a) == 64

    def test_sensitive_to_every_input(self):
        base = store_digest("flowkey", self.CONFIG, 25.0, 25.0)
        assert store_digest("other", self.CONFIG, 25.0, 25.0) != base
        assert store_digest("flowkey", self.CONFIG, 30.0, 25.0) != base
        assert store_digest("flowkey", self.CONFIG, 25.0, 70.0) != base
        changed = replace(self.CONFIG, delta_t=self.CONFIG.delta_t + 1.0)
        assert store_digest("flowkey", changed, 25.0, 25.0) != base
        policy = replace(self.CONFIG, warm_start_policy="nearest")
        assert store_digest("flowkey", policy, 25.0, 25.0) != base

    def test_schema_version_invalidates(self, monkeypatch):
        base = store_digest("flowkey", self.CONFIG, 25.0, 25.0)
        monkeypatch.setattr(
            store_module, "STORE_SCHEMA_VERSION", STORE_SCHEMA_VERSION + 1
        )
        assert store_digest("flowkey", self.CONFIG, 25.0, 25.0) != base

    def test_rejects_empty_flow_key(self):
        with pytest.raises(ValueError, match="flow cache key"):
            store_digest("", self.CONFIG, 25.0, 25.0)


class TestResultStore:
    def test_round_trip(self, tmp_path, converged):
        store = open_store(tmp_path / "store")
        digest = store_digest("k", GuardbandConfig(), 25.0, 25.0)
        assert store.get(digest) is None
        assert digest not in store
        store.put(digest, converged)
        assert digest in store and len(store) == 1
        loaded = store.get(digest)
        assert loaded is not None
        assert loaded.frequency_hz == converged.frequency_hz
        assert loaded.iterations == converged.iterations
        np.testing.assert_array_equal(
            loaded.tile_temperatures, converged.tile_temperatures
        )

    def test_put_rejects_non_results(self, tmp_path):
        store = open_store(tmp_path / "store")
        with pytest.raises(TypeError, match="GuardbandResult"):
            store.put("d" * 64, {"not": "a result"})

    def test_corrupt_entry_quarantined(self, tmp_path, converged):
        store = open_store(tmp_path / "store")
        digest = store_digest("k", GuardbandConfig(), 25.0, 25.0)
        store.put(digest, converged)
        store.path_for(digest).write_bytes(b"torn write garbage")
        before = store_counters()["quarantine"]
        assert store.get(digest) is None
        assert store_counters()["quarantine"] == before + 1
        corrupt = store.path_for(digest).with_name(
            store.path_for(digest).name + ".corrupt"
        )
        assert corrupt.exists()
        assert digest not in store

    def test_wrong_type_pickle_quarantined(self, tmp_path, converged):
        import pickle

        store = open_store(tmp_path / "store")
        digest = "a" * 64
        store.path_for(digest).parent.mkdir(parents=True, exist_ok=True)
        store.path_for(digest).write_bytes(pickle.dumps({"not": "result"}))
        assert store.get(digest) is None
        assert digest not in store

    def test_digests_listing_skips_noise(self, tmp_path, converged):
        store = open_store(tmp_path / "store")
        digest = store_digest("k", GuardbandConfig(), 25.0, 25.0)
        store.put(digest, converged)
        (store.root / "stray.txt").write_text("x")
        (store.root / ".hidden.pkl").write_text("x")
        assert store.digests() == [digest]

    def test_concurrent_writers_one_winner(self, tmp_path, converged):
        store_root = tmp_path / "store"
        digest = store_digest("k", GuardbandConfig(), 25.0, 25.0)
        procs = [
            multiprocessing.Process(
                target=_put_entry, args=(str(store_root), digest, converged)
            )
            for _ in range(4)
        ]
        for p in procs:
            p.start()
        for p in procs:
            p.join(timeout=60)
            assert p.exitcode == 0
        store = ResultStore(store_root)
        loaded = store.get(digest)
        assert loaded is not None
        assert loaded.frequency_hz == converged.frequency_hz
        # No tmp or lock debris counted as entries.
        assert store.digests() == [digest]


def _put_entry(root, digest, result):
    open_store(root).put(digest, result)


def _sweep_spec(**overrides) -> ExperimentSpec:
    defaults = dict(benchmarks=(TINY_A, TINY_B), ambients=(25.0, 40.0))
    defaults.update(overrides)
    return ExperimentSpec(**defaults)


def _executed_and_skipped(sink: InMemorySink):
    executed = [r for r in sink.spans() if r.get("name") == "sweep.cell"]
    skipped = [
        r for r in sink.events() if r.get("name") == "sweep.cell_skipped"
    ]
    return executed, skipped


class TestSweepStoreAndResume:
    def test_store_hits_skip_algorithm1(self, cache_dir, tmp_path):
        spec = _sweep_spec()
        store = str(tmp_path / "store")
        first = run_sweep(spec, workers=1, store=store)
        assert first.ok
        assert first.store_totals() == {"hit": 0, "miss": spec.n_jobs}

        again = run_sweep(spec, workers=1, store=store)
        assert again.ok
        assert again.store_totals() == {"hit": spec.n_jobs, "miss": 0}
        assert again.frequencies() == first.frequencies()
        # Served cells report no fresh Algorithm 1 phase work.
        assert all(r.phase_seconds == {} for r in again.results)

    def test_resume_skips_completed_cells(self, cache_dir, tmp_path):
        spec = _sweep_spec()
        jsonl = tmp_path / "sweep.jsonl"
        first = run_sweep(spec, workers=1, jsonl_path=str(jsonl))
        assert first.ok

        sink = InMemorySink()
        with observe.enabled(sink=sink):
            resumed = run_sweep(
                spec, workers=1, resume_from=str(jsonl),
                jsonl_path=str(tmp_path / "resumed.jsonl"),
            )
        executed, skipped = _executed_and_skipped(sink)
        assert resumed.ok
        assert resumed.n_resumed == spec.n_jobs
        assert executed == []
        assert len(skipped) == spec.n_jobs
        assert all(s["attrs"].get("source") == "resume" for s in skipped)
        assert resumed.frequencies() == first.frequencies()
        assert resumed.gains() == first.gains()

    def test_partial_resume_executes_only_remainder(self, cache_dir, tmp_path):
        spec = _sweep_spec()
        jsonl = tmp_path / "sweep.jsonl"
        first = run_sweep(spec, workers=1, jsonl_path=str(jsonl))
        assert first.ok

        lines = jsonl.read_text().splitlines(keepends=True)
        k = 2
        truncated = tmp_path / "truncated.jsonl"
        truncated.write_text("".join(lines[:k]))

        sink = InMemorySink()
        with observe.enabled(sink=sink):
            resumed = run_sweep(spec, workers=1, resume_from=str(truncated))
        executed, skipped = _executed_and_skipped(sink)
        assert resumed.ok and resumed.n_resumed == k
        assert len(executed) == spec.n_jobs - k
        assert len(skipped) == k
        assert resumed.frequencies() == first.frequencies()

    def test_resume_tolerates_torn_trailing_line(self, cache_dir, tmp_path):
        spec = _sweep_spec()
        jsonl = tmp_path / "sweep.jsonl"
        first = run_sweep(spec, workers=1, jsonl_path=str(jsonl))
        assert first.ok
        with open(jsonl, "a", encoding="utf-8") as handle:
            handle.write('{"type": "result", "job_id": "torn')
        resumed = run_sweep(spec, workers=1, resume_from=str(jsonl))
        assert resumed.ok and resumed.n_resumed == spec.n_jobs

    def test_jsonl_round_trip(self, cache_dir, tmp_path):
        spec = _sweep_spec()
        first = run_sweep(spec, workers=1)
        out = tmp_path / "saved.jsonl"
        first.to_jsonl(out)
        loaded = SweepResult.from_jsonl(out)
        assert loaded.frequencies() == first.frequencies()
        assert loaded.gains() == first.gains()
        assert {r.job_id for r in loaded.results} == {
            r.job_id for r in first.results
        }

    def test_warm_start_convergence_equivalence(self, cache_dir, tmp_path):
        ambients = (25.0, 35.0, 45.0)
        cold_cfg = GuardbandConfig(base_activity=0.2)
        warm_cfg = GuardbandConfig(base_activity=0.2,
                                   warm_start_policy="nearest")
        cold = run_sweep(
            ExperimentSpec(benchmarks=(TINY_A,), ambients=ambients,
                           config=cold_cfg),
            workers=1,
        )
        warm = run_sweep(
            ExperimentSpec(benchmarks=(TINY_A,), ambients=ambients,
                           config=warm_cfg),
            workers=1, store=str(tmp_path / "store"),
        )
        assert cold.ok and warm.ok
        warm_by_cell = {r.cell[1]: r for r in warm.results}
        cold_by_cell = {r.cell[1]: r for r in cold.results}
        assert sum(w.warm_started for w in warm.results) >= 1
        assert (
            sum(w.iterations for w in warm.results)
            <= sum(c.iterations for c in cold.results)
        )
        # Tolerance-identical: each warm frequency within the cell's
        # delta_t compensation margin of the cold one (DESIGN.md §11).
        from repro.cad.flow import run_flow
        from repro.coffe.fabric import build_fabric
        from repro.netlists.generator import generate_netlist

        flow = run_flow(generate_netlist(TINY_A))
        fabric = build_fabric(25.0)
        for t_ambient in ambients:
            direct = thermal_aware_guardband(
                flow, fabric, t_ambient, config=cold_cfg
            )
            margin = abs(
                direct.history[-1].frequency_hz - direct.frequency_hz
            )
            drift = abs(
                warm_by_cell[t_ambient].frequency_hz
                - cold_by_cell[t_ambient].frequency_hz
            )
            assert drift <= margin

    def test_killed_mid_sweep_then_resume(self, cache_dir, tmp_path):
        """Integration: SIGKILL a live sweep, resume, re-execute only
        the cells the dead run never recorded."""
        run_dir = tmp_path / "run"
        run_dir.mkdir()
        jsonl = run_dir / "sweep.jsonl"
        script = textwrap.dedent(
            f"""
            import sys
            sys.path.insert(0, {SRC_DIR!r})
            from repro.api import ExperimentSpec, run_sweep
            from repro.netlists.generator import NetlistSpec

            spec = ExperimentSpec(
                benchmarks=(
                    NetlistSpec("store_tiny_a", n_luts=10, depth=3, seed=61,
                                base_activity=0.2),
                    NetlistSpec("store_tiny_b", n_luts=12, depth=3, seed=62,
                                base_activity=0.18),
                ),
                ambients=(25.0, 40.0),
            )
            run_sweep(spec, workers=1, jsonl_path={str(jsonl)!r})
            """
        )
        env = dict(os.environ, PYTHONPATH=SRC_DIR)
        child = subprocess.Popen(
            [sys.executable, "-c", script], env=env,
            stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL,
        )
        try:
            # Wait for at least one complete record, then kill mid-run.
            deadline = time.monotonic() + 120.0
            while time.monotonic() < deadline:
                if child.poll() is not None:
                    break  # finished before we struck — still a valid resume
                if jsonl.exists() and jsonl.read_text().count("\n") >= 1:
                    child.send_signal(signal.SIGKILL)
                    break
                time.sleep(0.02)
            child.wait(timeout=60)
        finally:
            if child.poll() is None:
                child.kill()
                child.wait(timeout=60)

        assert jsonl.exists()
        recorded = SweepResult.from_jsonl(jsonl)
        k = len(recorded.results)
        assert k >= 1

        spec = _sweep_spec()
        sink = InMemorySink()
        with observe.enabled(sink=sink):
            resumed = run_sweep(spec, workers=1, resume_from=str(jsonl))
        executed, skipped = _executed_and_skipped(sink)
        assert resumed.ok
        assert resumed.n_resumed == k
        assert len(executed) == spec.n_jobs - k
        assert len(skipped) == k
        executed_ids = {r["attrs"].get("job_id") for r in executed}
        recorded_ids = {r.job_id for r in recorded.results}
        assert executed_ids.isdisjoint(recorded_ids)
