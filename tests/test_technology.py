"""Tests for the temperature laws and device parameter sets."""

import math

import pytest

from repro.technology import (
    HP_NMOS,
    HP_PMOS,
    LP_NMOS,
    LP_PMOS,
    T_REFERENCE_K,
    celsius_to_kelvin,
    device_by_name,
    kelvin_to_celsius,
    mobility_factor,
    thermal_voltage,
    threshold_voltage,
)
from repro.technology.ptm22 import DeviceParams
from repro.technology.temperature import arrhenius_scale


class TestConversions:
    def test_celsius_kelvin_roundtrip(self):
        assert kelvin_to_celsius(celsius_to_kelvin(37.5)) == pytest.approx(37.5)

    def test_reference_is_25c(self):
        assert kelvin_to_celsius(T_REFERENCE_K) == pytest.approx(25.0)

    def test_zero_celsius(self):
        assert celsius_to_kelvin(0.0) == pytest.approx(273.15)


class TestThermalVoltage:
    def test_room_temperature_value(self):
        # kT/q at 300 K is the textbook 25.85 mV.
        assert thermal_voltage(300.0) == pytest.approx(0.02585, rel=1e-3)

    def test_monotonic_in_temperature(self):
        assert thermal_voltage(373.0) > thermal_voltage(273.0)

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            thermal_voltage(0.0)


class TestMobility:
    def test_unity_at_reference(self):
        assert mobility_factor(T_REFERENCE_K) == pytest.approx(1.0)

    def test_degrades_when_hot(self):
        assert mobility_factor(celsius_to_kelvin(100.0)) < 1.0

    def test_improves_when_cold(self):
        assert mobility_factor(celsius_to_kelvin(0.0)) > 1.0

    def test_exponent_controls_slope(self):
        hot = celsius_to_kelvin(100.0)
        assert mobility_factor(hot, 2.0) < mobility_factor(hot, 1.0)

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            mobility_factor(-5.0)


class TestThresholdVoltage:
    def test_drops_with_temperature(self):
        cold = threshold_voltage(0.32, celsius_to_kelvin(0.0), 0.3e-3)
        hot = threshold_voltage(0.32, celsius_to_kelvin(100.0), 0.3e-3)
        assert hot < cold

    def test_reference_value(self):
        assert threshold_voltage(0.32, T_REFERENCE_K, 0.3e-3) == pytest.approx(0.32)

    def test_slope_magnitude(self):
        # 0.3 mV/K over 100 K is 30 mV.
        delta = threshold_voltage(0.32, T_REFERENCE_K, 0.3e-3) - threshold_voltage(
            0.32, T_REFERENCE_K + 100.0, 0.3e-3
        )
        assert delta == pytest.approx(0.03)


class TestArrhenius:
    def test_unity_at_reference(self):
        assert arrhenius_scale(T_REFERENCE_K, 0.1) == pytest.approx(1.0)

    def test_increases_with_temperature(self):
        assert arrhenius_scale(celsius_to_kelvin(100.0), 0.1) > 1.0

    def test_higher_activation_steeper(self):
        hot = celsius_to_kelvin(100.0)
        assert arrhenius_scale(hot, 0.3) > arrhenius_scale(hot, 0.1)


class TestDeviceParams:
    def test_lookup_by_name(self):
        assert device_by_name("hp_nmos") is HP_NMOS
        assert device_by_name("lp_pmos") is LP_PMOS

    def test_lookup_unknown_raises(self):
        with pytest.raises(KeyError, match="unknown device"):
            device_by_name("finfet_7nm")

    def test_lp_has_higher_threshold(self):
        assert LP_NMOS.vth0 > HP_NMOS.vth0
        assert LP_PMOS.vth0 > HP_PMOS.vth0

    def test_pmos_weaker_than_nmos(self):
        assert HP_PMOS.k_drive < HP_NMOS.k_drive

    def test_scaled_returns_modified_copy(self):
        variant = HP_NMOS.scaled(vth0=0.4)
        assert variant.vth0 == pytest.approx(0.4)
        assert HP_NMOS.vth0 == pytest.approx(0.32)
        assert variant.k_drive == HP_NMOS.k_drive

    def test_rejects_bad_polarity(self):
        with pytest.raises(ValueError, match="polarity"):
            DeviceParams(
                name="x", polarity="z", vth0=0.3, kvt=1e-4, k_drive=1e-4,
                alpha=1.3, mu_exp=1.5, subthreshold_n=1.5, lam=0.1,
                vdsat=0.25, c_gate=1e-16, c_drain=1e-16,
            )

    def test_rejects_bad_alpha(self):
        with pytest.raises(ValueError, match="alpha"):
            HP_NMOS.scaled(alpha=3.0)

    def test_lp_leakage_is_flatter(self):
        # The BRAM core's leakage is dominated by the near-flat
        # gate/junction component (paper Table II's quadratic BRAM fit).
        assert LP_NMOS.gate_leak_fraction > HP_NMOS.gate_leak_fraction
        assert LP_NMOS.gate_leak_ea_ev < HP_NMOS.gate_leak_ea_ev
