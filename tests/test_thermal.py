"""Tests for the steady-state thermal solver."""

import numpy as np
import pytest

from repro.arch.layout import FabricLayout
from repro.arch.params import ArchParams
from repro.thermal.hotspot import ThermalSolver, xpe_cross_validation
from repro.thermal.package import ThermalPackage


@pytest.fixture(scope="module")
def layout():
    return FabricLayout(ArchParams(), 8, 8)


@pytest.fixture(scope="module")
def solver(layout):
    return ThermalSolver(layout)


class TestThermalSolver:
    def test_zero_power_is_ambient(self, solver, layout):
        temps = solver.solve(np.zeros(layout.n_tiles), 25.0)
        assert np.allclose(temps, 25.0)

    def test_uniform_power_uniform_rise(self, solver, layout):
        power = np.full(layout.n_tiles, 1e-4)
        temps = solver.solve(power, 25.0)
        expected = 25.0 + 1e-4 / solver.package.g_vertical_w_per_k
        assert np.allclose(temps, expected, rtol=1e-9)

    def test_energy_conservation(self, solver, layout):
        rng = np.random.default_rng(3)
        power = rng.uniform(0.0, 1e-3, layout.n_tiles)
        temps = solver.solve(power, 30.0)
        heat_out = solver.package.g_vertical_w_per_k * (temps - 30.0)
        assert heat_out.sum() == pytest.approx(power.sum(), rel=1e-9)

    def test_hotspot_peaks_at_source(self, solver, layout):
        power = np.zeros(layout.n_tiles)
        center = layout.tile_index(4, 4)
        power[center] = 2e-3
        temps = solver.solve(power, 25.0)
        assert np.argmax(temps) == center
        assert temps[center] > temps[layout.tile_index(0, 0)] + 0.5

    def test_lateral_spreading_monotone_with_distance(self, solver, layout):
        power = np.zeros(layout.n_tiles)
        power[layout.tile_index(4, 4)] = 2e-3
        temps = solver.solve(power, 25.0)
        t_near = temps[layout.tile_index(4, 5)]
        t_far = temps[layout.tile_index(4, 7)]
        assert t_near > t_far

    def test_linearity_in_power(self, solver, layout):
        power = np.zeros(layout.n_tiles)
        power[10] = 1e-3
        rise1 = solver.solve(power, 25.0) - 25.0
        rise2 = solver.solve(2.0 * power, 25.0) - 25.0
        assert np.allclose(rise2, 2.0 * rise1, rtol=1e-9)

    def test_ambient_shift(self, solver, layout):
        power = np.full(layout.n_tiles, 5e-5)
        a = solver.solve(power, 25.0)
        b = solver.solve(power, 70.0)
        assert np.allclose(b - a, 45.0, rtol=1e-9)

    def test_rejects_negative_power(self, solver, layout):
        power = np.zeros(layout.n_tiles)
        power[0] = -1e-3
        with pytest.raises(ValueError, match="negative"):
            solver.solve(power, 25.0)

    def test_rejects_wrong_shape(self, solver):
        with pytest.raises(ValueError, match="shape"):
            solver.solve(np.zeros(7), 25.0)

    def test_batched_rows_match_single_solves_bitwise(self, solver, layout):
        rng = np.random.default_rng(11)
        batch = rng.uniform(0.0, 1e-3, (5, layout.n_tiles))
        temps = solver.solve(batch, 25.0)
        assert temps.shape == (5, layout.n_tiles)
        for row, power in zip(temps, batch):
            single = solver.solve(power, 25.0)
            np.testing.assert_array_equal(row, single)

    def test_batched_per_row_ambient(self, solver, layout):
        rng = np.random.default_rng(12)
        batch = rng.uniform(0.0, 1e-3, (3, layout.n_tiles))
        ambients = np.array([15.0, 25.0, 70.0])
        temps = solver.solve(batch, ambients)
        for row, power, ambient in zip(temps, batch, ambients):
            np.testing.assert_array_equal(row, solver.solve(power, ambient))

    def test_batched_scalar_ambient_broadcasts(self, solver, layout):
        batch = np.full((4, layout.n_tiles), 5e-5)
        uniform = solver.solve(batch, 40.0)
        spelled = solver.solve(batch, np.full(4, 40.0))
        np.testing.assert_array_equal(uniform, spelled)

    def test_batched_rejects_negative_row(self, solver, layout):
        batch = np.zeros((3, layout.n_tiles))
        batch[1, 0] = -1e-3
        with pytest.raises(ValueError, match=r"rows \[1\]"):
            solver.solve(batch, 25.0)

    def test_batched_rejects_wrong_width(self, solver):
        with pytest.raises(ValueError, match="batched power shape"):
            solver.solve(np.zeros((3, 7)), 25.0)

    def test_batched_rejects_ambient_length_mismatch(self, solver, layout):
        batch = np.zeros((3, layout.n_tiles))
        with pytest.raises(ValueError, match="ambient shape"):
            solver.solve(batch, np.array([25.0, 30.0]))

    def test_unfactored_rejects_batch(self, solver, layout):
        with pytest.raises(ValueError, match="single"):
            solver.solve_unfactored(np.zeros((2, layout.n_tiles)), 25.0)

    def test_stronger_package_cools_better(self, layout):
        weak = ThermalSolver(layout, ThermalPackage(1e-5, 2e-4))
        strong = ThermalSolver(layout, ThermalPackage(1e-3, 2e-4))
        power = np.full(layout.n_tiles, 1e-4)
        assert weak.average_rise(power, 25.0) > strong.average_rise(power, 25.0)


class TestPackage:
    def test_rejects_nonpositive_vertical(self):
        with pytest.raises(ValueError):
            ThermalPackage(g_vertical_w_per_k=0.0)

    def test_rth_inverse(self):
        pkg = ThermalPackage(g_vertical_w_per_k=1e-4)
        assert pkg.rth_tile_k_per_w == pytest.approx(1e4)


class TestXpeCrossValidation:
    def test_paper_formula(self):
        # Paper Sec. IV-A: dT ~= 0.7 p_design/p_base.
        assert xpe_cross_validation(0.2, 0.1) == pytest.approx(1.4)

    def test_rejects_zero_base(self):
        with pytest.raises(ValueError):
            xpe_cross_validation(1.0, 0.0)
