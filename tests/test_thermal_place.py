"""Tests for repro.cad.thermal_place — the placement thermal proxy.

Covers the incremental-cost bookkeeping (delta prediction == committed
delta == from-scratch recompute), the solver calibration loop (gamma
fit, drift-triggered refits, loud shape failure), the anneal's
integrity guard, determinism, and the observe telemetry the proxy
emits.
"""

import numpy as np
import pytest

from repro import observe
from repro.activity.ace import estimate_activity
from repro.arch.layout import FabricLayout, TileType
from repro.cad.pack import pack_netlist
from repro.cad.place import (
    PlacementIntegrityError,
    _check_cost_integrity,
    _initial_placement,
    _net_hpwl,
    _placement_nets,
    place,
)
from repro.cad.thermal_place import (
    SHAPE_TOLERANCE,
    ThermalPlaceError,
    ThermalProxy,
    _spreading_kernel,
    cluster_densities,
    density_vector,
    static_tile_density,
)
from repro.observe.sinks import InMemorySink


@pytest.fixture(scope="module")
def packed(tiny_netlist, arch):
    return pack_netlist(tiny_netlist, arch)


@pytest.fixture(scope="module")
def layout(packed, arch):
    counts = {t: 0 for t in TileType}
    for c in packed.clusters:
        counts[c.type] += 1
    return FabricLayout.for_netlist(
        arch, counts[TileType.CLB], counts[TileType.BRAM],
        counts[TileType.DSP], counts[TileType.IO],
    )


@pytest.fixture(scope="module")
def activity(tiny_netlist, tiny_spec):
    return estimate_activity(tiny_netlist, tiny_spec.base_activity)


def make_proxy(packed, layout, activity, seed=5, **kwargs):
    rng = np.random.default_rng(seed)
    placement = _initial_placement(packed, layout, rng)
    return ThermalProxy(
        layout, packed, activity, placement.location, **kwargs
    ), placement


def random_move(proxy, packed, layout, placement, rng):
    """One random same-type relocation as the placer's move list."""
    cluster = packed.clusters[int(rng.integers(0, len(packed.clusters)))]
    x0, y0 = placement.location[cluster.id]
    candidates = [
        (t.x, t.y) for t in layout.tiles()
        if t.type == cluster.type and (t.x, t.y) != (x0, y0)
    ]
    x1, y1 = candidates[int(rng.integers(0, len(candidates)))]
    placement.location[cluster.id] = (x1, y1)
    return [(cluster.id, (x0, y0), (x1, y1))]


class TestDensityModel:
    def test_cluster_densities_positive_for_active_logic(
        self, packed, activity
    ):
        densities = cluster_densities(packed, activity)
        assert set(densities) == {c.id for c in packed.clusters}
        # The tiny design's logic clusters all switch, so they all heat.
        assert all(d >= 0.0 for d in densities.values())
        assert max(densities.values()) > 0.0

    def test_static_density_everywhere_positive(self, layout):
        base = static_tile_density(layout)
        assert base.shape == (layout.n_tiles,)
        assert np.all(base > 0.0)

    def test_density_vector_decomposes(self, packed, layout, activity):
        rng = np.random.default_rng(1)
        placement = _initial_placement(packed, layout, rng)
        total = density_vector(packed, placement.location, layout, activity)
        dynamic = density_vector(
            packed, placement.location, layout, activity, include_static=False
        )
        assert total.shape == (layout.n_tiles,)
        np.testing.assert_allclose(
            total - dynamic, static_tile_density(layout)
        )
        assert dynamic.sum() == pytest.approx(
            sum(cluster_densities(packed, activity).values())
        )

    def test_kernel_is_normalized_and_peaked_at_center(self):
        kernel = _spreading_kernel(2, 1.3)
        assert len(kernel) == 25
        assert sum(w for _, _, w in kernel) == pytest.approx(1.0)
        center = next(w for dx, dy, w in kernel if dx == 0 and dy == 0)
        assert center == max(w for _, _, w in kernel)


class TestIncrementalCost:
    def test_initial_raw_cost_matches_full_recompute(
        self, packed, layout, activity
    ):
        proxy, _ = make_proxy(packed, layout, activity)
        assert proxy.raw_cost == pytest.approx(proxy.full_raw_cost())

    def test_delta_prediction_matches_commit_and_recompute(
        self, packed, layout, activity
    ):
        proxy, placement = make_proxy(packed, layout, activity)
        proxy.weight = 1.0  # raw units: delta_for returns the raw delta
        rng = np.random.default_rng(9)
        for _ in range(40):
            before = proxy.raw_cost
            moved = random_move(proxy, packed, layout, placement, rng)
            predicted = proxy.delta_for(moved)
            proxy.apply(moved)
            assert proxy.raw_cost == pytest.approx(before + predicted)
        # After a long random walk the incremental state still agrees
        # with a from-scratch spread of the tracked density field.
        assert proxy.raw_cost == pytest.approx(proxy.full_raw_cost())

    def test_swap_move_footprints_cancel(self, packed, layout, activity):
        proxy, placement = make_proxy(packed, layout, activity)
        proxy.weight = 1.0
        # A cluster moved out and straight back is a thermal no-op.
        cluster = packed.clusters[0]
        x0, y0 = placement.location[cluster.id]
        there = [(cluster.id, (x0, y0), (x0, y0))]
        assert proxy.delta_for(there) == pytest.approx(0.0)

    def test_proxy_eval_counter_tracks_calls(self, packed, layout, activity):
        proxy, placement = make_proxy(packed, layout, activity)
        rng = np.random.default_rng(2)
        moved = random_move(proxy, packed, layout, placement, rng)
        assert proxy.n_proxy_evals == 0
        proxy.delta_for(moved)
        proxy.delta_for(moved)
        assert proxy.n_proxy_evals == 2


class TestCalibration:
    def test_forced_fit_sets_gamma_within_shape_tolerance(
        self, packed, layout, activity
    ):
        proxy, _ = make_proxy(packed, layout, activity)
        proxy.calibrate(force=True)
        assert proxy.gamma > 0.0
        assert proxy.n_calibrations == 1
        assert proxy.n_recalibrations == 1
        assert 0.0 <= proxy.final_shape_error <= SHAPE_TOLERANCE

    def test_fresh_gamma_is_stable_without_moves(
        self, packed, layout, activity
    ):
        proxy, _ = make_proxy(packed, layout, activity)
        proxy.calibrate(force=True)
        drift = proxy.calibrate()
        # Nothing moved, so the fit reproduces the held gain exactly.
        assert drift == pytest.approx(0.0, abs=1e-12)
        assert proxy.n_recalibrations == 1

    def test_stale_gamma_triggers_refit(self, packed, layout, activity):
        proxy, _ = make_proxy(packed, layout, activity)
        proxy.calibrate(force=True)
        good = proxy.gamma
        proxy.gamma = good * 10.0  # simulate a badly stale scaling
        drift = proxy.calibrate()
        assert drift > proxy.drift_tolerance
        assert proxy.n_recalibrations == 2
        assert proxy.gamma == pytest.approx(good)
        assert proxy.max_drift >= drift

    def test_unrepresentable_shape_fails_loudly(
        self, packed, layout, activity
    ):
        proxy, _ = make_proxy(
            packed, layout, activity, shape_tolerance=1e-9
        )
        with pytest.raises(ThermalPlaceError, match="shape tolerance"):
            proxy.calibrate(force=True)

    def test_solver_is_reused_across_calibrations(
        self, packed, layout, activity
    ):
        proxy, _ = make_proxy(packed, layout, activity)
        proxy.calibrate(force=True)
        solver = proxy._solver
        assert solver is not None
        proxy.calibrate()
        assert proxy._solver is solver


class TestIntegrityGuard:
    @pytest.fixture()
    def guard_state(self, packed, layout, activity):
        proxy, placement = make_proxy(packed, layout, activity)
        nets = _placement_nets(packed)
        hpwl = sum(_net_hpwl(n, placement.location) for n in nets)
        return proxy, placement, nets, hpwl

    def test_consistent_state_passes(self, guard_state):
        proxy, placement, nets, hpwl = guard_state
        _check_cost_integrity(hpwl, nets, placement.location, proxy)

    def test_hpwl_drift_is_fatal(self, guard_state):
        proxy, placement, nets, hpwl = guard_state
        with pytest.raises(PlacementIntegrityError, match="HPWL"):
            _check_cost_integrity(
                hpwl + 1.0, nets, placement.location, proxy
            )

    def test_proxy_drift_is_fatal(self, guard_state):
        proxy, placement, nets, hpwl = guard_state
        proxy.raw_cost += 0.1 * max(proxy.raw_cost, 1.0)
        with pytest.raises(PlacementIntegrityError, match="thermal proxy"):
            _check_cost_integrity(hpwl, nets, placement.location, proxy)

    def test_anneal_detects_corrupted_bookkeeping(
        self, monkeypatch, packed, layout
    ):
        """A proxy whose commits drift from its deltas must abort place()."""
        original = ThermalProxy.apply

        def corrupt(self, moved):
            original(self, moved)
            self.raw_cost += 0.05 * max(abs(self.raw_cost), 1.0)

        monkeypatch.setattr(ThermalProxy, "apply", corrupt)
        with pytest.raises(PlacementIntegrityError):
            place(packed, layout, seed=3, effort=0.3, thermal_weight=0.5)


class TestThermalAwareAnneal:
    @pytest.fixture(scope="class")
    def thermal_placement(self, packed, layout):
        return place(packed, layout, seed=3, effort=0.5, thermal_weight=0.7)

    def test_deterministic_for_seed_and_weight(
        self, packed, layout, thermal_placement
    ):
        again = place(packed, layout, seed=3, effort=0.5, thermal_weight=0.7)
        assert again.location == thermal_placement.location

    def test_weight_changes_the_anneal(self, packed, layout, thermal_placement):
        baseline = place(packed, layout, seed=3, effort=0.5)
        assert baseline.location != thermal_placement.location
        assert baseline.thermal_stats is None

    def test_stats_attached_and_sane(self, thermal_placement):
        stats = thermal_placement.thermal_stats
        assert stats is not None
        assert stats.thermal_weight == 0.7
        assert stats.gamma > 0.0
        assert stats.n_calibrations >= 2  # forced fit + final check
        assert stats.n_recalibrations >= 1
        assert stats.n_proxy_evals > 0
        assert np.isfinite(stats.max_drift)
        assert stats.final_shape_error <= SHAPE_TOLERANCE
        assert stats.proxy_cost >= 0.0

    def test_valid_placement(self, packed, thermal_placement):
        thermal_placement.validate(packed)

    def test_rejects_invalid_weight(self, packed, layout):
        with pytest.raises(ValueError, match="thermal_weight"):
            place(packed, layout, seed=3, thermal_weight=-0.5)
        with pytest.raises(ValueError, match="thermal_weight"):
            place(packed, layout, seed=3, thermal_weight=float("nan"))

    def test_observe_telemetry_emitted(self, packed, layout):
        sink = InMemorySink()
        with observe.enabled(sink=sink):
            place(packed, layout, seed=3, effort=0.3, thermal_weight=0.5)
        span_names = {r["name"] for r in sink.spans()}
        assert "place.thermal.calibrate" in span_names
        event_names = {r["name"] for r in sink.events()}
        assert "place.thermal.drift" in event_names
        metric_names = {r["name"] for r in sink.metrics()}
        assert "place.thermal.recalibrations" in metric_names
        assert "place.thermal.proxy_evals" in metric_names
