"""Tests for the transient thermal solver."""

import numpy as np
import pytest

from repro.arch.layout import FabricLayout
from repro.arch.params import ArchParams
from repro.thermal.hotspot import ThermalSolver
from repro.thermal.transient import TransientThermalSolver


@pytest.fixture(scope="module")
def layout():
    return FabricLayout(ArchParams(), 6, 6)


@pytest.fixture(scope="module")
def solver(layout):
    return TransientThermalSolver(layout)


class TestTransient:
    def test_converges_to_steady_state(self, solver, layout):
        rng = np.random.default_rng(1)
        power = rng.uniform(0.0, 5e-4, layout.n_tiles)
        steady = ThermalSolver(layout, solver.package).solve(power, 25.0)
        run = solver.simulate(power, 25.0, duration_s=12 * solver.time_constant_s)
        np.testing.assert_allclose(run.final(), steady, atol=0.05)

    def test_monotone_rise_from_ambient(self, solver, layout):
        power = np.full(layout.n_tiles, 1e-4)
        run = solver.simulate(power, 25.0, duration_s=4 * solver.time_constant_s)
        trace = run.tile_trace(layout.tile_index(3, 3))
        assert np.all(np.diff(trace) >= -1e-9)

    def test_time_constant_scale(self, solver, layout):
        # At one time constant a first-order system reaches ~63 % of the
        # step; the grid is close to first-order for uniform power.
        power = np.full(layout.n_tiles, 1e-4)
        steady = ThermalSolver(layout, solver.package).solve(power, 25.0)
        run = solver.simulate(power, 25.0, duration_s=solver.time_constant_s)
        frac = (run.final().mean() - 25.0) / (steady.mean() - 25.0)
        assert 0.5 < frac < 0.8

    def test_settling_time_reported(self, solver, layout):
        power = np.full(layout.n_tiles, 1e-4)
        steady = ThermalSolver(layout, solver.package).solve(power, 25.0)
        run = solver.simulate(power, 25.0, duration_s=15 * solver.time_constant_s)
        settle = run.settling_time_s(steady, tolerance_celsius=0.1)
        assert 0.0 < settle < 15 * solver.time_constant_s

    def test_warm_start(self, solver, layout):
        power = np.zeros(layout.n_tiles)
        hot_start = np.full(layout.n_tiles, 60.0)
        run = solver.simulate(
            power, 25.0, duration_s=10 * solver.time_constant_s,
            t_initial=hot_start,
        )
        # Cools towards ambient.
        assert run.final().mean() < 30.0
        assert run.temperatures[0].mean() == pytest.approx(60.0)

    def test_rejects_bad_inputs(self, solver, layout):
        power = np.zeros(layout.n_tiles)
        with pytest.raises(ValueError):
            solver.simulate(power, 25.0, duration_s=0.0)
        with pytest.raises(ValueError):
            solver.simulate(np.zeros(3), 25.0, duration_s=1.0)
        with pytest.raises(ValueError):
            solver.simulate(power, 25.0, duration_s=1.0, timestep_s=2.0)
        with pytest.raises(ValueError):
            TransientThermalSolver(layout, tile_heat_capacity_j_per_k=0.0)

    def test_thermal_much_slower_than_clock(self, solver):
        # Justifies the paper's offline (once-per-application) analysis.
        assert solver.time_constant_s > 1e-3  # milliseconds vs ns clocks
