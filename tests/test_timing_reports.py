"""Tests for slack and multi-path timing reports."""

import numpy as np
import pytest

from repro.netlists.netlist import BlockType


class TestEndpointSlacks:
    def test_critical_endpoint_has_least_slack(self, tiny_flow, fabric25, uniform_25):
        report = tiny_flow.timing.critical_path(fabric25, uniform_25)
        slacks = tiny_flow.timing.endpoint_slacks(
            fabric25, uniform_25, clock_period_s=report.critical_path_s
        )
        worst = min(slacks, key=lambda e: slacks[e])
        assert worst == report.critical_endpoint
        assert slacks[worst] == pytest.approx(0.0, abs=1e-18)

    def test_all_slacks_nonnegative_at_guardbanded_clock(
        self, tiny_flow, fabric25, uniform_25
    ):
        report = tiny_flow.timing.critical_path(fabric25, uniform_25)
        slacks = tiny_flow.timing.endpoint_slacks(
            fabric25, uniform_25, clock_period_s=report.critical_path_s * 1.01
        )
        assert all(s >= 0.0 for s in slacks.values())

    def test_aggressive_clock_fails_somewhere(self, tiny_flow, fabric25, uniform_25):
        report = tiny_flow.timing.critical_path(fabric25, uniform_25)
        slacks = tiny_flow.timing.endpoint_slacks(
            fabric25, uniform_25, clock_period_s=report.critical_path_s * 0.5
        )
        assert min(slacks.values()) < 0.0

    def test_endpoints_are_endpoints(self, tiny_flow, fabric25, uniform_25):
        slacks = tiny_flow.timing.endpoint_slacks(
            fabric25, uniform_25, clock_period_s=1e-8
        )
        for endpoint in slacks:
            block = tiny_flow.netlist.blocks[endpoint]
            assert block.type in (BlockType.FF, BlockType.BRAM, BlockType.OUTPUT)

    def test_rejects_bad_period(self, tiny_flow, fabric25, uniform_25):
        with pytest.raises(ValueError):
            tiny_flow.timing.endpoint_slacks(fabric25, uniform_25, 0.0)


class TestTopPaths:
    def test_sorted_and_headed_by_critical(self, tiny_flow, fabric25, uniform_25):
        paths = tiny_flow.timing.top_paths(fabric25, uniform_25, k=5)
        report = tiny_flow.timing.critical_path(fabric25, uniform_25)
        assert paths[0].critical_endpoint == report.critical_endpoint
        delays = [p.critical_path_s for p in paths]
        assert delays == sorted(delays, reverse=True)

    def test_distinct_endpoints(self, tiny_flow, fabric25, uniform_25):
        paths = tiny_flow.timing.top_paths(fabric25, uniform_25, k=4)
        endpoints = [p.critical_endpoint for p in paths]
        assert len(endpoints) == len(set(endpoints))

    def test_k_capped_by_endpoint_count(self, tiny_flow, fabric25, uniform_25):
        paths = tiny_flow.timing.top_paths(fabric25, uniform_25, k=10**6)
        assert len(paths) >= 2

    def test_path_ranking_can_shift_with_temperature(
        self, tiny_flow, fabric25, uniform_25
    ):
        # Not asserting a swap (seed-dependent); assert consistency instead:
        # every reported path delay grows with temperature.
        cold = tiny_flow.timing.top_paths(fabric25, uniform_25, k=3)
        hot = tiny_flow.timing.top_paths(fabric25, uniform_25 + 70.0, k=3)
        cold_by_ep = {p.critical_endpoint: p.critical_path_s for p in cold}
        for p in hot:
            if p.critical_endpoint in cold_by_ep:
                assert p.critical_path_s > cold_by_ep[p.critical_endpoint]

    def test_rejects_bad_k(self, tiny_flow, fabric25, uniform_25):
        with pytest.raises(ValueError):
            tiny_flow.timing.top_paths(fabric25, uniform_25, k=0)
