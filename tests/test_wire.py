"""Tests for repro.service.wire — the versioned wire schema.

The contract under test: ``from_wire(to_wire(x)) == x`` exactly (through
real JSON, not just dicts), every field of every kind survives both at
its default and at a non-default value, and every malformed document is
rejected with a :class:`WireError` that names the problem.
"""

import json
from dataclasses import fields, replace

import pytest

from repro.arch.params import ArchParams
from repro.core.guardband import GuardbandConfig
from repro.netlists.generator import NetlistSpec
from repro.runner.spec import ExperimentSpec
from repro.service.wire import (
    WIRE_KINDS,
    WIRE_SCHEMA_VERSION,
    WireError,
    from_wire,
    to_wire,
    wire_field_names,
)
from repro.thermal.package import ThermalPackage


def json_round_trip(obj):
    """Encode, push through real JSON text, decode."""
    return from_wire(json.loads(json.dumps(to_wire(obj))))


# One valid instance per kind, built from defaults (NetlistSpec has
# required fields, so it gets explicit ones).
DEFAULTS = {
    ArchParams: ArchParams(),
    NetlistSpec: NetlistSpec("wire_rt", n_luts=16),
    ThermalPackage: ThermalPackage(),
    GuardbandConfig: GuardbandConfig(),
}


def _perturbation(name, value):
    """Changes making one field non-default while staying valid.

    Usually ``{name: new_value}``; the objective fields are validated as
    a pair (``mode="energy"`` requires a target, a target requires
    energy mode), so perturbing either one flips both.
    """
    if name in ("mode", "target_frequency_hz"):
        return {"mode": "energy", "target_frequency_hz": 1.25e8}
    if isinstance(value, bool):
        return {name: not value}
    if isinstance(value, str):
        # GuardbandConfig.warm_start_policy only admits "off"/"nearest";
        # free-form names just get a suffix.
        return {name: "nearest" if value == "off" else value + "_alt"}
    if isinstance(value, int):
        return {name: value + 1}
    if isinstance(value, float):
        # Ratio-like fields are validated into (0, 1]; halving stays
        # inside, everything else can simply grow.
        return {name: value / 2 if 0.0 < value <= 1.0 else value + 1.0}
    if value is None and name == "package":
        return {
            name: ThermalPackage(
                g_vertical_w_per_k=1e-4, g_lateral_w_per_k=3e-4
            )
        }
    raise AssertionError(f"no perturbation for {name}={value!r}")


SCALAR_CASES = [
    (cls, f.name)
    for cls, instance in DEFAULTS.items()
    for f in fields(instance)
]


class TestRoundTrip:
    @pytest.mark.parametrize("cls", list(DEFAULTS), ids=lambda c: c.__name__)
    def test_defaults_round_trip(self, cls):
        original = DEFAULTS[cls]
        assert json_round_trip(original) == original

    @pytest.mark.parametrize(
        "cls,name", SCALAR_CASES,
        ids=[f"{cls.__name__}.{name}" for cls, name in SCALAR_CASES],
    )
    def test_every_field_round_trips_non_default(self, cls, name):
        base = DEFAULTS[cls]
        changed = replace(base, **_perturbation(name, getattr(base, name)))
        assert changed != base, name
        decoded = json_round_trip(changed)
        assert decoded == changed
        assert getattr(decoded, name) == getattr(changed, name)

    def test_experiment_spec_every_field_non_default(self):
        spec = ExperimentSpec(
            benchmarks=("sha", NetlistSpec("wire_rt", n_luts=16, seed=3)),
            ambients=(0.0, 85.0),
            corners=(-10.0, 100.0),
            arch=replace(ArchParams(), lut_size=5, vdd=0.75),
            config=GuardbandConfig(
                delta_t=1.0,
                max_iterations=40,
                base_activity=0.3,
                package=ThermalPackage(2e-5, 1e-4),
                warm_start_policy="nearest",
            ),
            seed=11,
            timing_driven=True,
            thermal_weight=0.5,
        )
        decoded = json_round_trip(spec)
        assert decoded == spec
        # Tuples stay tuples and nested kinds come back as dataclasses.
        assert isinstance(decoded.benchmarks, tuple)
        assert isinstance(decoded.benchmarks[1], NetlistSpec)
        assert isinstance(decoded.ambients, tuple)
        assert isinstance(decoded.arch, ArchParams)
        assert decoded.config is not None
        assert isinstance(decoded.config.package, ThermalPackage)

    def test_experiment_spec_defaults_round_trip(self):
        spec = ExperimentSpec(benchmarks=("sha",))
        assert json_round_trip(spec) == spec

    def test_envelope_shape(self):
        doc = to_wire(ArchParams())
        assert doc["kind"] == "ArchParams"
        assert doc["wire_version"] == WIRE_SCHEMA_VERSION
        assert isinstance(doc["payload"], dict)


class TestRejection:
    def test_unknown_version_is_rejected_with_both_versions(self):
        doc = to_wire(ArchParams())
        doc["wire_version"] = WIRE_SCHEMA_VERSION + 1
        with pytest.raises(WireError) as excinfo:
            from_wire(doc)
        message = str(excinfo.value)
        assert str(WIRE_SCHEMA_VERSION + 1) in message
        assert f"version {WIRE_SCHEMA_VERSION}" in message

    def test_v1_envelope_without_thermal_weight_is_rejected(self):
        """Pre-thermal-placement documents must not decode silently.

        A v1 ``ExperimentSpec`` has no ``thermal_weight`` field; decoding
        one as if it were v2 would default the weight and silently change
        what the sweep computes, so the version gate must refuse it."""
        doc = to_wire(ExperimentSpec(benchmarks=("sha",)))
        doc["wire_version"] = 1
        del doc["payload"]["thermal_weight"]
        with pytest.raises(WireError) as excinfo:
            from_wire(doc)
        assert f"version {WIRE_SCHEMA_VERSION}" in str(excinfo.value)

    def test_unknown_field_is_rejected_by_name(self):
        doc = to_wire(GuardbandConfig())
        doc["payload"]["made_up_knob"] = 3
        with pytest.raises(WireError, match="made_up_knob"):
            from_wire(doc)

    def test_unknown_field_error_lists_known_fields(self):
        doc = to_wire(ThermalPackage())
        doc["payload"]["bogus"] = 1
        with pytest.raises(WireError, match="g_vertical_w_per_k"):
            from_wire(doc)

    def test_unknown_kind_lists_supported_kinds(self):
        doc = {"kind": "FluxCapacitor", "wire_version": WIRE_SCHEMA_VERSION,
               "payload": {}}
        with pytest.raises(WireError) as excinfo:
            from_wire(doc)
        message = str(excinfo.value)
        assert "FluxCapacitor" in message
        for kind in WIRE_KINDS:
            assert kind in message

    @pytest.mark.parametrize("missing", ["kind", "wire_version", "payload"])
    def test_missing_envelope_key_is_named(self, missing):
        doc = to_wire(ArchParams())
        del doc[missing]
        with pytest.raises(WireError, match=missing):
            from_wire(doc)

    @pytest.mark.parametrize("doc", [None, 3, "ArchParams", ["kind"]])
    def test_non_object_document_is_rejected(self, doc):
        with pytest.raises(WireError, match="JSON object"):
            from_wire(doc)

    def test_non_object_payload_is_rejected(self):
        doc = to_wire(ArchParams())
        doc["payload"] = [1, 2]
        with pytest.raises(WireError, match="JSON object"):
            from_wire(doc)

    def test_invalid_value_fails_validation_on_decode(self):
        # __post_init__ re-runs on decode: a wire peer cannot smuggle in
        # values a local constructor would reject.
        doc = to_wire(ArchParams())
        doc["payload"]["lut_size"] = 1
        with pytest.raises(WireError, match="lut_size"):
            from_wire(doc)

    def test_incomplete_payload_is_actionable(self):
        doc = to_wire(NetlistSpec("wire_rt", n_luts=16))
        del doc["payload"]["name"]
        with pytest.raises(WireError, match="incomplete"):
            from_wire(doc)

    def test_unsupported_type_rejected_on_encode(self):
        with pytest.raises(WireError, match="not a wire type"):
            to_wire(object())

    def test_nested_benchmark_must_be_netlist_spec(self):
        spec = ExperimentSpec(benchmarks=("sha",))
        doc = to_wire(spec)
        doc["payload"]["benchmarks"] = [to_wire(ArchParams())]
        with pytest.raises(WireError, match="NetlistSpec"):
            from_wire(doc)

    def test_nested_arch_must_be_arch_params(self):
        spec = ExperimentSpec(benchmarks=("sha",))
        doc = to_wire(spec)
        doc["payload"]["arch"] = to_wire(ThermalPackage())
        with pytest.raises(WireError, match="ArchParams"):
            from_wire(doc)

    def test_nested_config_must_be_guardband_config(self):
        spec = ExperimentSpec(benchmarks=("sha",))
        doc = to_wire(spec)
        doc["payload"]["config"] = to_wire(ThermalPackage())
        with pytest.raises(WireError, match="GuardbandConfig"):
            from_wire(doc)

    def test_unknown_benchmark_name_rejected_on_decode(self):
        spec = ExperimentSpec(benchmarks=("sha",))
        doc = to_wire(spec)
        doc["payload"]["benchmarks"] = ["not_a_vtr_name"]
        with pytest.raises(WireError, match="not_a_vtr_name"):
            from_wire(doc)

    def test_non_finite_ambient_rejected_on_decode(self):
        spec = ExperimentSpec(benchmarks=("sha",))
        doc = to_wire(spec)
        doc["payload"]["ambients"] = ["inf"]
        with pytest.raises(WireError, match="finite"):
            from_wire(doc)


class TestManifestSurface:
    def test_wire_field_names_matches_dataclasses(self):
        for cls, instance in DEFAULTS.items():
            expected = tuple(sorted(f.name for f in fields(instance)))
            assert wire_field_names(cls.__name__) == expected

    def test_wire_field_names_unknown_kind(self):
        with pytest.raises(KeyError):
            wire_field_names("FluxCapacitor")

    def test_wire_kinds_are_sorted_and_complete(self):
        assert list(WIRE_KINDS) == sorted(WIRE_KINDS)
        assert set(WIRE_KINDS) == {
            "ArchParams", "ExperimentSpec", "GuardbandConfig",
            "NetlistSpec", "ThermalPackage",
        }
